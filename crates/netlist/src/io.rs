//! Minimal Bookshelf-style text serialization.
//!
//! The ICCAD-2015 flow exchanges placements as DEF; this reproduction uses
//! the simpler Bookshelf `.pl` format (one line per cell) plus `.nodes` /
//! `.nets` dumps for inspection. Reading a `.pl` back onto an existing
//! [`Design`] is the round-trip exercised by the placer harness.

use crate::design::{Design, NetlistError};
use crate::ids::CellId;
use crate::placement::Placement;
use std::fmt;
use std::fmt::Write as _;

/// A parse failure in one of the text formats, pointing at the offending
/// line.
///
/// All user-input parse paths in this module report through this type —
/// malformed input can never panic. Flow-level callers surface it through
/// their own error enum (`tdp_core::FlowError::Parse`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line; 0 when the error is not
    /// tied to a specific line.
    pub line: usize,
    /// Human-readable description of what was wrong.
    pub message: String,
}

impl ParseError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "parse error at line {}: {}", self.line, self.message)
        } else {
            write!(f, "parse error: {}", self.message)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for NetlistError {
    fn from(e: ParseError) -> Self {
        NetlistError::Invalid(e.to_string())
    }
}

/// Serializes the node list (`.nodes`): name, width, height, movability.
pub fn write_nodes(design: &Design) -> String {
    let mut out = String::new();
    let stats = design.stats();
    let _ = writeln!(out, "UCLA nodes 1.0");
    let _ = writeln!(out, "NumNodes : {}", stats.num_cells);
    let _ = writeln!(out, "NumTerminals : {}", stats.num_fixed);
    for cell in design.cell_ids() {
        let c = design.cell(cell);
        let ty = design.cell_type(cell);
        let terminal = if c.fixed { " terminal" } else { "" };
        let _ = writeln!(out, "  {} {} {}{}", c.name, ty.width, ty.height, terminal);
    }
    out
}

/// Serializes the net list (`.nets`): per net, its pins with offsets.
pub fn write_nets(design: &Design) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "UCLA nets 1.0");
    let _ = writeln!(out, "NumNets : {}", design.num_nets());
    let _ = writeln!(out, "NumPins : {}", design.num_pins());
    for net in design.net_ids() {
        let n = design.net(net);
        let _ = writeln!(out, "NetDegree : {} {}", n.degree(), n.name);
        for &pin in &n.pins {
            let p = design.pin(pin);
            let spec = design.pin_spec(pin);
            let io = match spec.direction {
                crate::library::PinDirection::Output => "O",
                crate::library::PinDirection::Input => "I",
            };
            let _ = writeln!(
                out,
                "  {} {} : {:.4} {:.4}",
                design.cell(p.cell).name,
                io,
                spec.dx,
                spec.dy
            );
        }
    }
    out
}

/// Serializes a placement (`.pl`): one `name x y : N` line per cell.
pub fn write_pl(design: &Design, placement: &Placement) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "UCLA pl 1.0");
    for cell in design.cell_ids() {
        let c = design.cell(cell);
        let (x, y) = placement.get(cell);
        let fixed = if c.fixed { " /FIXED" } else { "" };
        let _ = writeln!(out, "{} {:.6} {:.6} : N{}", c.name, x, y, fixed);
    }
    out
}

/// Parses a `.pl` produced by [`write_pl`] back onto `design`.
///
/// Unknown cell names and malformed lines are errors; cells absent from the
/// file keep their position from `base` (or 0,0 when `base` is `None`).
///
/// # Errors
///
/// Returns [`ParseError`] on parse failure or unknown cells.
pub fn read_pl(
    design: &Design,
    text: &str,
    base: Option<&Placement>,
) -> Result<Placement, ParseError> {
    let mut placement = base.cloned().unwrap_or_else(|| Placement::new(design));
    // Build a name→id map once; Design::find_cell is linear.
    let names: std::collections::HashMap<&str, CellId> = design
        .cell_ids()
        .map(|c| (design.cell(c).name.as_str(), c))
        .collect();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("UCLA") {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(name), Some(xs), Some(ys)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(ParseError::at(
                lineno + 1,
                format!("malformed .pl line: {line:?}"),
            ));
        };
        let cell = *names
            .get(name)
            .ok_or_else(|| ParseError::at(lineno + 1, format!("unknown cell {name:?} in .pl")))?;
        let x: f64 = xs
            .parse()
            .map_err(|_| ParseError::at(lineno + 1, format!("bad x coordinate {xs:?}")))?;
        let y: f64 = ys
            .parse()
            .map_err(|_| ParseError::at(lineno + 1, format!("bad y coordinate {ys:?}")))?;
        placement.set(cell, x, y);
    }
    Ok(placement)
}

/// Serializes the placement as a minimal DEF subset (DESIGN/DIEAREA/
/// COMPONENTS), the exchange format of the paper's flow (Fig. 1 emits
/// `.def`). Coordinates are written in integer DBU at `dbu` units per
/// placement unit.
pub fn write_def(design: &Design, placement: &Placement, dbu: f64) -> String {
    let mut out = String::new();
    let die = design.die();
    let d = |v: f64| (v * dbu).round() as i64;
    let _ = writeln!(out, "VERSION 5.8 ;");
    let _ = writeln!(out, "DESIGN {} ;", design.name());
    let _ = writeln!(out, "UNITS DISTANCE MICRONS {} ;", dbu as i64);
    let _ = writeln!(
        out,
        "DIEAREA ( {} {} ) ( {} {} ) ;",
        d(die.lx),
        d(die.ly),
        d(die.ux),
        d(die.uy)
    );
    let _ = writeln!(out, "COMPONENTS {} ;", design.num_cells());
    for cell in design.cell_ids() {
        let c = design.cell(cell);
        let ty = design.cell_type(cell);
        let (x, y) = placement.get(cell);
        let kind = if c.fixed { "FIXED" } else { "PLACED" };
        let _ = writeln!(
            out,
            "- {} {} + {} ( {} {} ) N ;",
            c.name,
            ty.name,
            kind,
            d(x),
            d(y)
        );
    }
    let _ = writeln!(out, "END COMPONENTS");
    let _ = writeln!(out, "END DESIGN");
    out
}

/// Parses a DEF produced by [`write_def`] back onto `design`.
///
/// Only the COMPONENTS placement is read; the netlist itself must already
/// exist (DEF placement exchange, as in the ICCAD-2015 flow).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed component lines, unknown
/// instances, or master-name mismatches.
pub fn read_def(design: &Design, text: &str) -> Result<Placement, ParseError> {
    let mut placement = Placement::new(design);
    let names: std::collections::HashMap<&str, CellId> = design
        .cell_ids()
        .map(|c| (design.cell(c).name.as_str(), c))
        .collect();
    // DBU from the UNITS line; default 1.
    let mut dbu = 1.0f64;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        let n = lineno + 1;
        if let Some(rest) = line.strip_prefix("UNITS DISTANCE MICRONS ") {
            let v = rest.trim_end_matches(';').trim();
            dbu = v
                .parse()
                .map_err(|_| ParseError::at(n, format!("bad UNITS value {v:?}")))?;
            continue;
        }
        let Some(rest) = line.strip_prefix("- ") else {
            continue;
        };
        let tokens: Vec<&str> = rest.split_whitespace().collect();
        // - <name> <master> + PLACED|FIXED ( x y ) N ;
        if tokens.len() < 9 || tokens[2] != "+" || tokens[4] != "(" {
            return Err(ParseError::at(
                n,
                format!("malformed DEF component line: {line:?}"),
            ));
        }
        let cell = *names
            .get(tokens[0])
            .ok_or_else(|| ParseError::at(n, format!("unknown component {:?}", tokens[0])))?;
        let expected = &design.cell_type(cell).name;
        if tokens[1] != expected {
            return Err(ParseError::at(
                n,
                format!(
                    "component {} master mismatch: DEF says {:?}, design says {:?}",
                    tokens[0], tokens[1], expected
                ),
            ));
        }
        let x: f64 = tokens[5]
            .parse()
            .map_err(|_| ParseError::at(n, format!("bad x in DEF line {line:?}")))?;
        let y: f64 = tokens[6]
            .parse()
            .map_err(|_| ParseError::at(n, format!("bad y in DEF line {line:?}")))?;
        placement.set(cell, x / dbu, y / dbu);
    }
    Ok(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{DesignBuilder, Rect};
    use crate::library::CellLibrary;

    fn sample() -> (Design, Placement) {
        let mut b = DesignBuilder::new(
            "t",
            CellLibrary::standard(),
            Rect::new(0.0, 0.0, 100.0, 100.0),
            10.0,
        );
        let pi = b.add_fixed_cell("pi", "IOPAD_IN", 0.0, 50.0).unwrap();
        let u1 = b.add_cell("u1", "NAND2_X1").unwrap();
        let u2 = b.add_cell("u2", "INV_X1").unwrap();
        let po = b.add_fixed_cell("po", "IOPAD_OUT", 96.0, 50.0).unwrap();
        b.add_net("n0", &[(pi, "PAD"), (u1, "A"), (u1, "B")])
            .unwrap();
        b.add_net("n1", &[(u1, "Y"), (u2, "A")]).unwrap();
        b.add_net("n2", &[(u2, "Y"), (po, "PAD")]).unwrap();
        let d = b.finish().unwrap();
        let mut p = Placement::new(&d);
        p.set(pi, 0.0, 50.0);
        p.set(u1, 33.25, 40.0);
        p.set(u2, 61.5, 70.0);
        p.set(po, 96.0, 50.0);
        (d, p)
    }

    #[test]
    fn pl_round_trips() {
        let (d, p) = sample();
        let text = write_pl(&d, &p);
        let back = read_pl(&d, &text, None).unwrap();
        for c in d.cell_ids() {
            let (ax, ay) = p.get(c);
            let (bx, by) = back.get(c);
            assert!((ax - bx).abs() < 1e-6 && (ay - by).abs() < 1e-6);
        }
    }

    #[test]
    fn nodes_and_nets_dumps_have_headers() {
        let (d, _) = sample();
        let nodes = write_nodes(&d);
        assert!(nodes.contains("NumNodes : 4"));
        assert!(nodes.contains("NumTerminals : 2"));
        assert!(nodes.contains("pi") && nodes.contains("terminal"));
        let nets = write_nets(&d);
        assert!(nets.contains("NumNets : 3"));
        assert!(nets.contains("NetDegree : 3 n0"));
    }

    #[test]
    fn read_pl_rejects_unknown_cell() {
        let (d, _) = sample();
        let err = read_pl(&d, "ghost 1.0 2.0 : N", None).unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn read_pl_rejects_malformed_line() {
        let (d, _) = sample();
        assert!(read_pl(&d, "u1 onlyx", None).is_err());
        assert!(read_pl(&d, "u1 abc def : N", None).is_err());
    }

    #[test]
    fn def_round_trips() {
        let (d, p) = sample();
        let text = write_def(&d, &p, 1000.0);
        assert!(text.contains("DESIGN t ;"));
        assert!(text.contains("COMPONENTS 4 ;"));
        assert!(text.contains("+ FIXED"));
        assert!(text.contains("+ PLACED"));
        let back = read_def(&d, &text).unwrap();
        for c in d.cell_ids() {
            let (ax, ay) = p.get(c);
            let (bx, by) = back.get(c);
            assert!((ax - bx).abs() < 1e-3 && (ay - by).abs() < 1e-3);
        }
    }

    #[test]
    fn read_def_rejects_master_mismatch() {
        let (d, _) = sample();
        let text = "- u1 INV_X1 + PLACED ( 0 0 ) N ;";
        let err = read_def(&d, text).unwrap_err();
        assert!(err.to_string().contains("master mismatch"));
    }

    #[test]
    fn read_def_rejects_unknown_component() {
        let (d, _) = sample();
        assert!(read_def(&d, "- ghost INV_X1 + PLACED ( 0 0 ) N ;").is_err());
        assert!(read_def(&d, "- u1 NAND2_X1 + PLACED ( zz 0 ) N ;").is_err());
    }

    #[test]
    fn read_pl_keeps_base_positions() {
        let (d, p) = sample();
        let partial = "u1 5.0 6.0 : N\n";
        let back = read_pl(&d, partial, Some(&p)).unwrap();
        assert_eq!(back.get(d.find_cell("u1").unwrap()), (5.0, 6.0));
        assert_eq!(
            back.get(d.find_cell("u2").unwrap()),
            p.get(d.find_cell("u2").unwrap())
        );
    }
}

//! Circuit data model for the Efficient-TDP reproduction.
//!
//! This crate provides the netlist substrate every other crate builds on:
//!
//! * [`ids`] — strongly-typed indices ([`CellId`], [`NetId`], [`PinId`],
//!   [`CellTypeId`]) so cells, nets and pins can never be confused.
//! * [`library`] — the standard-cell library model: cell geometry, pin
//!   offsets, input capacitances and a linear drive-resistance delay model
//!   per timing arc.
//! * [`design`] — the flat netlist itself ([`Design`]): cell instances,
//!   nets, pins, the die outline and placement rows, plus a validating
//!   [`DesignBuilder`].
//! * [`placement`] — cell coordinates ([`Placement`]) and derived pin
//!   positions and half-perimeter wirelength.
//! * [`sdc`] — timing constraints: clock period, input arrival times and
//!   output required times.
//! * [`io`] — minimal Bookshelf-style text serialization for designs and
//!   placements (round-trip tested).
//!
//! # Example
//!
//! Build a two-inverter chain and compute its wirelength:
//!
//! ```
//! use netlist::{CellLibrary, DesignBuilder, Placement, Rect};
//!
//! # fn main() -> Result<(), netlist::NetlistError> {
//! let lib = CellLibrary::standard();
//! let mut b = DesignBuilder::new("chain", lib, Rect::new(0.0, 0.0, 100.0, 100.0), 10.0);
//! let pad_in = b.add_fixed_cell("pi", "IOPAD_IN", 0.0, 50.0)?;
//! let inv1 = b.add_cell("u1", "INV_X1")?;
//! let inv2 = b.add_cell("u2", "INV_X1")?;
//! let pad_out = b.add_fixed_cell("po", "IOPAD_OUT", 100.0, 50.0)?;
//! b.add_net("n0", &[(pad_in, "PAD"), (inv1, "A")])?;
//! b.add_net("n1", &[(inv1, "Y"), (inv2, "A")])?;
//! b.add_net("n2", &[(inv2, "Y"), (pad_out, "PAD")])?;
//! let design = b.finish()?;
//!
//! let mut placement = Placement::new(&design);
//! placement.set(inv1, 30.0, 50.0);
//! placement.set(inv2, 60.0, 50.0);
//! assert!(placement.total_hpwl(&design) > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod design;
pub mod ids;
pub mod io;
pub mod library;
pub mod placement;
pub mod sdc;

pub use design::{Cell, Design, DesignBuilder, DesignStats, Net, NetlistError, Pin, Rect, Row};
pub use ids::{CellId, CellTypeId, NetId, PinId};
pub use io::ParseError;
pub use library::{CellLibrary, CellType, PinDirection, PinSpec, TimingArcSpec};
pub use placement::{CellMove, DirtySummary, MoveTracker, Placement};
pub use sdc::Sdc;

//! Standard-cell library model.
//!
//! A [`CellType`] describes the geometry and timing of one master cell:
//! its footprint, pin offsets, input pin capacitances, and one
//! [`TimingArcSpec`] per input→output propagation arc. Delays follow the
//! linear drive model used throughout the reproduction:
//!
//! ```text
//! arc delay = intrinsic + drive_resistance × (downstream capacitance)
//! ```
//!
//! which, combined with the Elmore wire model in the `sta` crate, makes the
//! source→sink delay quadratic in wirelength — the property Sec. III-C of
//! the paper exploits with its quadratic distance loss.

use crate::ids::CellTypeId;
use std::collections::HashMap;
use std::fmt;

/// Signal direction of a pin on a cell master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinDirection {
    /// Pin receives a signal (net sink).
    Input,
    /// Pin drives a net.
    Output,
}

impl fmt::Display for PinDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinDirection::Input => write!(f, "input"),
            PinDirection::Output => write!(f, "output"),
        }
    }
}

/// A pin on a cell master: name, direction, offset from the cell origin and
/// capacitive load it presents (inputs) in femtofarad-like units.
#[derive(Debug, Clone, PartialEq)]
pub struct PinSpec {
    /// Pin name, unique within the cell type (e.g. `"A"`, `"Y"`, `"CK"`).
    pub name: String,
    /// Signal direction.
    pub direction: PinDirection,
    /// Offset of the pin from the cell origin (lower-left corner), x.
    pub dx: f64,
    /// Offset of the pin from the cell origin (lower-left corner), y.
    pub dy: f64,
    /// Input capacitance; zero for outputs.
    pub cap: f64,
}

/// A combinational (or clock→output) propagation arc through a cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingArcSpec {
    /// Index of the source pin within [`CellType::pins`].
    pub from_pin: usize,
    /// Index of the destination (output) pin within [`CellType::pins`].
    pub to_pin: usize,
    /// Load-independent delay component.
    pub intrinsic: f64,
    /// Output drive resistance multiplied by downstream capacitance to get
    /// the load-dependent delay component.
    pub drive_resistance: f64,
}

/// A cell master: geometry, pins and timing arcs.
#[derive(Debug, Clone, PartialEq)]
pub struct CellType {
    /// Master name (e.g. `"NAND2_X1"`).
    pub name: String,
    /// Footprint width in placement units.
    pub width: f64,
    /// Footprint height in placement units (one row height for standard cells).
    pub height: f64,
    /// Pins of the master.
    pub pins: Vec<PinSpec>,
    /// Propagation arcs. For sequential cells these are clock→output arcs.
    pub arcs: Vec<TimingArcSpec>,
    /// Whether this master is a sequential element (flip-flop).
    pub is_sequential: bool,
    /// Index of the clock pin within [`CellType::pins`] for sequential cells.
    pub clock_pin: Option<usize>,
}

impl CellType {
    /// Looks up a pin index by name.
    pub fn pin_index(&self, name: &str) -> Option<usize> {
        self.pins.iter().position(|p| p.name == name)
    }

    /// Returns the cell area.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Returns indices of all output pins.
    pub fn output_pins(&self) -> impl Iterator<Item = usize> + '_ {
        self.pins
            .iter()
            .enumerate()
            .filter(|(_, p)| p.direction == PinDirection::Output)
            .map(|(i, _)| i)
    }

    /// Returns indices of all input pins (including the clock pin).
    pub fn input_pins(&self) -> impl Iterator<Item = usize> + '_ {
        self.pins
            .iter()
            .enumerate()
            .filter(|(_, p)| p.direction == PinDirection::Input)
            .map(|(i, _)| i)
    }

    /// Index of the data input pin of a flip-flop (the input that is not the
    /// clock). Returns `None` for combinational cells.
    pub fn data_pin(&self) -> Option<usize> {
        if !self.is_sequential {
            return None;
        }
        self.input_pins().find(|&i| Some(i) != self.clock_pin)
    }
}

/// A collection of cell masters addressed by [`CellTypeId`] or name.
///
/// # Example
///
/// ```
/// use netlist::CellLibrary;
///
/// let lib = CellLibrary::standard();
/// let inv = lib.by_name("INV_X1").expect("standard lib has INV_X1");
/// assert_eq!(lib.get(inv).pins.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CellLibrary {
    types: Vec<CellType>,
    by_name: HashMap<String, CellTypeId>,
}

impl CellLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a cell master, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if a master with the same name already exists, or if any arc
    /// references an out-of-range pin or a non-output destination.
    pub fn add(&mut self, ty: CellType) -> CellTypeId {
        assert!(
            !self.by_name.contains_key(&ty.name),
            "duplicate cell type name {:?}",
            ty.name
        );
        for arc in &ty.arcs {
            assert!(arc.from_pin < ty.pins.len(), "arc from_pin out of range");
            assert!(arc.to_pin < ty.pins.len(), "arc to_pin out of range");
            assert_eq!(
                ty.pins[arc.to_pin].direction,
                PinDirection::Output,
                "arc destination must be an output pin"
            );
        }
        let id = CellTypeId::new(self.types.len());
        self.by_name.insert(ty.name.clone(), id);
        self.types.push(ty);
        id
    }

    /// Returns the master for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: CellTypeId) -> &CellType {
        &self.types[id.index()]
    }

    /// Looks a master up by name.
    pub fn by_name(&self, name: &str) -> Option<CellTypeId> {
        self.by_name.get(name).copied()
    }

    /// Number of masters in the library.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Iterates over `(id, master)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CellTypeId, &CellType)> {
        self.types
            .iter()
            .enumerate()
            .map(|(i, t)| (CellTypeId::new(i), t))
    }

    /// Builds the default standard library used by the synthetic benchmark
    /// suite: inverters, buffers, NAND/NOR/AOI gates in several drive
    /// strengths, a D flip-flop and IO pads.
    ///
    /// Geometry uses a site width of 1.0 and a row height of 10.0. Delay
    /// units are picosecond-like; capacitances femtofarad-like.
    pub fn standard() -> Self {
        let mut lib = CellLibrary::new();
        let row = 10.0;

        let inp = |name: &str, dx: f64, cap: f64| PinSpec {
            name: name.to_string(),
            direction: PinDirection::Input,
            dx,
            dy: row / 2.0,
            cap,
        };
        let outp = |name: &str, dx: f64| PinSpec {
            name: name.to_string(),
            direction: PinDirection::Output,
            dx,
            dy: row / 2.0,
            cap: 0.0,
        };

        // One-input gates in three drive strengths. Stronger cells have
        // lower drive resistance, higher input cap and a wider footprint.
        for (base, intrinsic) in [("INV", 8.0), ("BUF", 14.0)] {
            for (sx, scale) in [("X1", 1.0f64), ("X2", 2.0), ("X4", 4.0)] {
                let width = 2.0 * scale.sqrt().max(1.0);
                lib.add(CellType {
                    name: format!("{base}_{sx}"),
                    width,
                    height: row,
                    pins: vec![inp("A", 0.0, 1.0 * scale), outp("Y", width)],
                    arcs: vec![TimingArcSpec {
                        from_pin: 0,
                        to_pin: 1,
                        intrinsic,
                        drive_resistance: 12.0 / scale,
                    }],
                    is_sequential: false,
                    clock_pin: None,
                });
            }
        }

        // Two-input gates in two drive strengths.
        for (base, intrinsic) in [("NAND2", 12.0), ("NOR2", 14.0)] {
            for (sx, scale) in [("X1", 1.0f64), ("X2", 2.0)] {
                let width = 3.0 * scale.sqrt().max(1.0);
                lib.add(CellType {
                    name: format!("{base}_{sx}"),
                    width,
                    height: row,
                    pins: vec![
                        inp("A", 0.0, 1.2 * scale),
                        inp("B", width / 2.0, 1.2 * scale),
                        outp("Y", width),
                    ],
                    arcs: vec![
                        TimingArcSpec {
                            from_pin: 0,
                            to_pin: 2,
                            intrinsic,
                            drive_resistance: 14.0 / scale,
                        },
                        TimingArcSpec {
                            from_pin: 1,
                            to_pin: 2,
                            intrinsic: intrinsic + 2.0,
                            drive_resistance: 14.0 / scale,
                        },
                    ],
                    is_sequential: false,
                    clock_pin: None,
                });
            }
        }

        // Three-input and-or-invert gate.
        lib.add(CellType {
            name: "AOI21_X1".to_string(),
            width: 4.0,
            height: row,
            pins: vec![
                inp("A", 0.0, 1.4),
                inp("B", 1.5, 1.4),
                inp("C", 3.0, 1.4),
                outp("Y", 4.0),
            ],
            arcs: vec![
                TimingArcSpec {
                    from_pin: 0,
                    to_pin: 3,
                    intrinsic: 16.0,
                    drive_resistance: 16.0,
                },
                TimingArcSpec {
                    from_pin: 1,
                    to_pin: 3,
                    intrinsic: 17.0,
                    drive_resistance: 16.0,
                },
                TimingArcSpec {
                    from_pin: 2,
                    to_pin: 3,
                    intrinsic: 15.0,
                    drive_resistance: 16.0,
                },
            ],
            is_sequential: false,
            clock_pin: None,
        });

        // D flip-flop: CK, D inputs; Q output; clock→Q arc only (D is a
        // timing endpoint, Q launches the next stage).
        lib.add(CellType {
            name: "DFF_X1".to_string(),
            width: 5.0,
            height: row,
            pins: vec![inp("CK", 0.0, 1.0), inp("D", 2.0, 1.5), outp("Q", 5.0)],
            arcs: vec![TimingArcSpec {
                from_pin: 0,
                to_pin: 2,
                intrinsic: 25.0,
                drive_resistance: 10.0,
            }],
            is_sequential: true,
            clock_pin: Some(0),
        });

        // IO pads: a primary input drives a net through PAD (output pin);
        // a primary output receives a net at PAD (input pin).
        lib.add(CellType {
            name: "IOPAD_IN".to_string(),
            width: 4.0,
            height: row,
            pins: vec![outp("PAD", 2.0)],
            arcs: vec![],
            is_sequential: false,
            clock_pin: None,
        });
        lib.add(CellType {
            name: "IOPAD_OUT".to_string(),
            width: 4.0,
            height: row,
            pins: vec![inp("PAD", 2.0, 2.0)],
            arcs: vec![],
            is_sequential: false,
            clock_pin: None,
        });

        // Hard macro block: a fixed multi-row obstacle (RAM/IP stand-in)
        // spanning 4 rows. Its single input pin lets generated designs
        // route nets into it so macros participate in timing as
        // heavily-loaded endpoints, like a memory's data input would.
        lib.add(CellType {
            name: "MACRO_BLK".to_string(),
            width: 48.0,
            height: 4.0 * row,
            pins: vec![inp("PAD", 24.0, 6.0)],
            arcs: vec![],
            is_sequential: false,
            clock_pin: None,
        });

        lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_has_expected_masters() {
        let lib = CellLibrary::standard();
        for name in [
            "INV_X1",
            "INV_X2",
            "INV_X4",
            "BUF_X1",
            "NAND2_X1",
            "NAND2_X2",
            "NOR2_X1",
            "AOI21_X1",
            "DFF_X1",
            "IOPAD_IN",
            "IOPAD_OUT",
            "MACRO_BLK",
        ] {
            assert!(lib.by_name(name).is_some(), "missing {name}");
        }

        // The macro master is a multi-row obstacle.
        let blk = lib.get(lib.by_name("MACRO_BLK").unwrap());
        assert!(blk.height > 10.0 && blk.width > 10.0);
        assert!(lib.len() >= 11);
        assert!(!lib.is_empty());
    }

    #[test]
    fn dff_is_sequential_with_clock_and_data() {
        let lib = CellLibrary::standard();
        let dff = lib.get(lib.by_name("DFF_X1").unwrap());
        assert!(dff.is_sequential);
        assert_eq!(dff.clock_pin, Some(0));
        assert_eq!(dff.data_pin(), Some(1));
        assert_eq!(dff.pin_index("Q"), Some(2));
    }

    #[test]
    fn stronger_drive_has_lower_resistance() {
        let lib = CellLibrary::standard();
        let x1 = lib.get(lib.by_name("INV_X1").unwrap());
        let x4 = lib.get(lib.by_name("INV_X4").unwrap());
        assert!(x4.arcs[0].drive_resistance < x1.arcs[0].drive_resistance);
        assert!(x4.pins[0].cap > x1.pins[0].cap);
    }

    #[test]
    fn combinational_cells_have_no_data_pin() {
        let lib = CellLibrary::standard();
        let inv = lib.get(lib.by_name("INV_X1").unwrap());
        assert_eq!(inv.data_pin(), None);
        assert_eq!(inv.output_pins().collect::<Vec<_>>(), vec![1]);
        assert_eq!(inv.input_pins().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "duplicate cell type")]
    fn duplicate_name_panics() {
        let mut lib = CellLibrary::standard();
        lib.add(CellType {
            name: "INV_X1".to_string(),
            width: 1.0,
            height: 1.0,
            pins: vec![],
            arcs: vec![],
            is_sequential: false,
            clock_pin: None,
        });
    }

    #[test]
    #[should_panic(expected = "destination must be an output")]
    fn arc_to_input_panics() {
        let mut lib = CellLibrary::new();
        lib.add(CellType {
            name: "BAD".to_string(),
            width: 1.0,
            height: 1.0,
            pins: vec![
                PinSpec {
                    name: "A".into(),
                    direction: PinDirection::Input,
                    dx: 0.0,
                    dy: 0.0,
                    cap: 1.0,
                },
                PinSpec {
                    name: "B".into(),
                    direction: PinDirection::Input,
                    dx: 0.0,
                    dy: 0.0,
                    cap: 1.0,
                },
            ],
            arcs: vec![TimingArcSpec {
                from_pin: 0,
                to_pin: 1,
                intrinsic: 1.0,
                drive_resistance: 1.0,
            }],
            is_sequential: false,
            clock_pin: None,
        });
    }
}

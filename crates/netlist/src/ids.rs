//! Strongly-typed index newtypes.
//!
//! All netlist entities are stored in flat vectors and referenced by dense
//! `u32` indices. The newtypes below make it a compile error to index a cell
//! table with a pin id, per C-NEWTYPE.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a dense index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn new(index: usize) -> Self {
                assert!(index <= u32::MAX as usize, "id index overflows u32");
                Self(index as u32)
            }

            /// Returns the dense index as `usize`, suitable for vector indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Index of a cell instance within a [`crate::Design`].
    CellId,
    "c"
);
define_id!(
    /// Index of a net within a [`crate::Design`].
    NetId,
    "n"
);
define_id!(
    /// Index of a pin instance within a [`crate::Design`].
    PinId,
    "p"
);
define_id!(
    /// Index of a cell type within a [`crate::CellLibrary`].
    CellTypeId,
    "t"
);

/// An iterator over ids `0..len`, used by the `Design` accessors.
#[derive(Debug, Clone)]
pub struct IdRange<T> {
    range: std::ops::Range<u32>,
    _marker: std::marker::PhantomData<T>,
}

impl<T> IdRange<T> {
    pub(crate) fn new(len: usize) -> Self {
        Self {
            range: 0..len as u32,
            _marker: std::marker::PhantomData,
        }
    }
}

macro_rules! impl_id_range {
    ($name:ident) => {
        impl Iterator for IdRange<$name> {
            type Item = $name;
            fn next(&mut self) -> Option<$name> {
                self.range.next().map($name)
            }
            fn size_hint(&self) -> (usize, Option<usize>) {
                self.range.size_hint()
            }
        }
        impl ExactSizeIterator for IdRange<$name> {}
        impl DoubleEndedIterator for IdRange<$name> {
            fn next_back(&mut self) -> Option<$name> {
                self.range.next_back().map($name)
            }
        }
    };
}

impl_id_range!(CellId);
impl_id_range!(NetId);
impl_id_range!(PinId);
impl_id_range!(CellTypeId);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_index() {
        let c = CellId::new(42);
        assert_eq!(c.index(), 42);
        assert_eq!(usize::from(c), 42);
        assert_eq!(c.to_string(), "c42");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(PinId::new(1));
        set.insert(PinId::new(1));
        set.insert(PinId::new(2));
        assert_eq!(set.len(), 2);
        assert!(PinId::new(1) < PinId::new(2));
    }

    #[test]
    fn id_range_iterates_all() {
        let ids: Vec<CellId> = IdRange::<CellId>::new(3).collect();
        assert_eq!(ids, vec![CellId::new(0), CellId::new(1), CellId::new(2)]);
        let rev: Vec<NetId> = IdRange::<NetId>::new(2).rev().collect();
        assert_eq!(rev, vec![NetId::new(1), NetId::new(0)]);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn id_overflow_panics() {
        let _ = CellId::new(u32::MAX as usize + 1);
    }
}

//! The flat netlist: cells, nets, pins, die geometry and a validating builder.

use crate::ids::{CellId, IdRange, NetId, PinId};
use crate::library::{CellLibrary, PinDirection};
use crate::sdc::Sdc;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An axis-aligned rectangle, used for the die outline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower-left x.
    pub lx: f64,
    /// Lower-left y.
    pub ly: f64,
    /// Upper-right x.
    pub ux: f64,
    /// Upper-right y.
    pub uy: f64,
}

impl Rect {
    /// Creates a rectangle from its corners.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle is inverted (`ux < lx` or `uy < ly`).
    pub fn new(lx: f64, ly: f64, ux: f64, uy: f64) -> Self {
        assert!(ux >= lx && uy >= ly, "inverted rectangle");
        Self { lx, ly, ux, uy }
    }

    /// Width of the rectangle.
    pub fn width(&self) -> f64 {
        self.ux - self.lx
    }

    /// Height of the rectangle.
    pub fn height(&self) -> f64 {
        self.uy - self.ly
    }

    /// Area of the rectangle.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Whether a point lies inside (inclusive).
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.lx && x <= self.ux && y >= self.ly && y <= self.uy
    }
}

/// A placement row: standard cells are legalized onto rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Row lower-left y coordinate.
    pub y: f64,
    /// Row x start.
    pub lx: f64,
    /// Row x end.
    pub ux: f64,
    /// Row height (equals the standard cell height).
    pub height: f64,
}

/// A cell instance.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Instance name, unique in the design.
    pub name: String,
    /// Master this instance instantiates.
    pub type_id: crate::ids::CellTypeId,
    /// Fixed cells (IO pads, macros) are not moved by the placer.
    pub fixed: bool,
    /// Pin instances of this cell, in master pin order.
    pub pins: Vec<PinId>,
}

/// A net connecting one driver pin to zero or more sink pins.
#[derive(Debug, Clone)]
pub struct Net {
    /// Net name, unique in the design.
    pub name: String,
    /// All pins on the net; `pins[0]` is always the driver.
    pub pins: Vec<PinId>,
}

impl Net {
    /// The unique driver pin of the net.
    pub fn driver(&self) -> PinId {
        self.pins[0]
    }

    /// Sink pins of the net (everything but the driver).
    pub fn sinks(&self) -> &[PinId] {
        &self.pins[1..]
    }

    /// Number of pins on the net.
    pub fn degree(&self) -> usize {
        self.pins.len()
    }
}

/// A pin instance: which cell it belongs to, which master pin it
/// instantiates, and which net it connects to.
#[derive(Debug, Clone, Copy)]
pub struct Pin {
    /// Owning cell.
    pub cell: CellId,
    /// Index into the owning master's pin list.
    pub spec: usize,
    /// Connected net, if any (unconnected pins are allowed, e.g. unused
    /// gate inputs tied off by the generator).
    pub net: Option<NetId>,
}

/// Errors reported by [`DesignBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A referenced cell master does not exist in the library.
    UnknownCellType(String),
    /// A referenced instance name does not exist.
    UnknownCell(String),
    /// A referenced pin name does not exist on the master.
    UnknownPin {
        /// Master name.
        cell_type: String,
        /// Offending pin name.
        pin: String,
    },
    /// Two cells or nets share a name.
    DuplicateName(String),
    /// A net has no driver or more than one driver.
    BadDriverCount {
        /// Offending net name.
        net: String,
        /// Number of output pins found on the net.
        drivers: usize,
    },
    /// A pin was connected to two nets.
    PinReconnected {
        /// Offending net name.
        net: String,
        /// Cell instance name.
        cell: String,
        /// Pin name.
        pin: String,
    },
    /// The finished design failed a structural check.
    Invalid(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownCellType(n) => write!(f, "unknown cell type {n:?}"),
            NetlistError::UnknownCell(n) => write!(f, "unknown cell instance {n:?}"),
            NetlistError::UnknownPin { cell_type, pin } => {
                write!(f, "unknown pin {pin:?} on cell type {cell_type:?}")
            }
            NetlistError::DuplicateName(n) => write!(f, "duplicate name {n:?}"),
            NetlistError::BadDriverCount { net, drivers } => {
                write!(f, "net {net:?} has {drivers} drivers, expected exactly 1")
            }
            NetlistError::PinReconnected { net, cell, pin } => {
                write!(f, "pin {cell}/{pin} reconnected by net {net:?}")
            }
            NetlistError::Invalid(msg) => write!(f, "invalid design: {msg}"),
        }
    }
}

impl Error for NetlistError {}

/// Aggregate structural statistics of a design, used by reports and the
/// benchmark generator's self-checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignStats {
    /// Number of cell instances (movable + fixed).
    pub num_cells: usize,
    /// Number of movable cells.
    pub num_movable: usize,
    /// Number of fixed cells.
    pub num_fixed: usize,
    /// Number of nets.
    pub num_nets: usize,
    /// Number of pin instances.
    pub num_pins: usize,
    /// Number of sequential (flip-flop) instances.
    pub num_sequential: usize,
    /// Largest net degree.
    pub max_net_degree: usize,
    /// Mean net degree.
    pub avg_net_degree: f64,
    /// Total movable cell area divided by die area.
    pub utilization: f64,
}

/// A complete, validated netlist.
///
/// Construct one with [`DesignBuilder`]; all cross-references are guaranteed
/// consistent afterwards (every pin's net contains the pin, every net has
/// exactly one driver, and so on).
#[derive(Debug, Clone)]
pub struct Design {
    name: String,
    library: CellLibrary,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    pins: Vec<Pin>,
    die: Rect,
    row_height: f64,
    sdc: Sdc,
}

impl Design {
    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell library the design instantiates from.
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// Die outline.
    pub fn die(&self) -> Rect {
        self.die
    }

    /// Standard cell row height.
    pub fn row_height(&self) -> f64 {
        self.row_height
    }

    /// Timing constraints.
    pub fn sdc(&self) -> &Sdc {
        &self.sdc
    }

    /// Mutable access to the timing constraints (e.g. to tighten the clock).
    pub fn sdc_mut(&mut self) -> &mut Sdc {
        &mut self.sdc
    }

    /// Placement rows covering the die.
    pub fn rows(&self) -> Vec<Row> {
        let n = (self.die.height() / self.row_height).floor() as usize;
        (0..n)
            .map(|i| Row {
                y: self.die.ly + i as f64 * self.row_height,
                lx: self.die.lx,
                ux: self.die.ux,
                height: self.row_height,
            })
            .collect()
    }

    /// Cell accessor.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Net accessor.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Pin accessor.
    pub fn pin(&self, id: PinId) -> &Pin {
        &self.pins[id.index()]
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of pins.
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// Iterates over all cell ids.
    pub fn cell_ids(&self) -> IdRange<CellId> {
        IdRange::new(self.cells.len())
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> IdRange<NetId> {
        IdRange::new(self.nets.len())
    }

    /// Iterates over all pin ids.
    pub fn pin_ids(&self) -> IdRange<PinId> {
        IdRange::new(self.pins.len())
    }

    /// The master type of a cell.
    pub fn cell_type(&self, id: CellId) -> &crate::library::CellType {
        self.library.get(self.cells[id.index()].type_id)
    }

    /// The master pin spec behind a pin instance.
    pub fn pin_spec(&self, id: PinId) -> &crate::library::PinSpec {
        let pin = &self.pins[id.index()];
        &self.cell_type(pin.cell).pins[pin.spec]
    }

    /// Direction of a pin instance.
    pub fn pin_direction(&self, id: PinId) -> PinDirection {
        self.pin_spec(id).direction
    }

    /// Human-readable `cell/pin` label for diagnostics.
    pub fn pin_label(&self, id: PinId) -> String {
        let pin = &self.pins[id.index()];
        format!(
            "{}/{}",
            self.cells[pin.cell.index()].name,
            self.cell_type(pin.cell).pins[pin.spec].name
        )
    }

    /// Looks a cell up by instance name (linear scan; intended for tests
    /// and examples, not hot paths).
    pub fn find_cell(&self, name: &str) -> Option<CellId> {
        self.cells
            .iter()
            .position(|c| c.name == name)
            .map(CellId::new)
    }

    /// Retypes a cell to a different master — the netlist half of an ECO
    /// resize. Connectivity (pins, nets) is untouched; only the master
    /// changes, which moves pin offsets, input capacitances and timing-arc
    /// parameters to the new variant's values.
    ///
    /// The new master must be pin-compatible with the old one: the same
    /// number of pins, with matching names and directions in the same
    /// order, and the same sequential/clock-pin shape. Geometry (width,
    /// offsets) and electrical parameters (caps, arcs) may differ — that
    /// is the point of a resize.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Invalid`] if the masters are not
    /// pin-compatible. The design is unchanged on error.
    pub fn set_cell_type(
        &mut self,
        cell: CellId,
        new_type: crate::ids::CellTypeId,
    ) -> Result<(), NetlistError> {
        let old = self.library.get(self.cells[cell.index()].type_id);
        let new = self.library.get(new_type);
        if old.pins.len() != new.pins.len() {
            return Err(NetlistError::Invalid(format!(
                "resize {}: {} has {} pins, {} has {}",
                self.cells[cell.index()].name,
                old.name,
                old.pins.len(),
                new.name,
                new.pins.len()
            )));
        }
        for (a, b) in old.pins.iter().zip(&new.pins) {
            if a.name != b.name || a.direction != b.direction {
                return Err(NetlistError::Invalid(format!(
                    "resize {}: pin {}/{} incompatible with {}/{}",
                    self.cells[cell.index()].name,
                    old.name,
                    a.name,
                    new.name,
                    b.name
                )));
            }
        }
        if old.is_sequential != new.is_sequential || old.clock_pin != new.clock_pin {
            return Err(NetlistError::Invalid(format!(
                "resize {}: {} and {} differ in sequential shape",
                self.cells[cell.index()].name,
                old.name,
                new.name
            )));
        }
        self.cells[cell.index()].type_id = new_type;
        Ok(())
    }

    /// Computes aggregate structural statistics.
    pub fn stats(&self) -> DesignStats {
        let num_fixed = self.cells.iter().filter(|c| c.fixed).count();
        let num_sequential = self
            .cells
            .iter()
            .filter(|c| self.library.get(c.type_id).is_sequential)
            .count();
        let max_net_degree = self.nets.iter().map(Net::degree).max().unwrap_or(0);
        let total_degree: usize = self.nets.iter().map(Net::degree).sum();
        let movable_area: f64 = self
            .cells
            .iter()
            .filter(|c| !c.fixed)
            .map(|c| self.library.get(c.type_id).area())
            .sum();
        DesignStats {
            num_cells: self.cells.len(),
            num_movable: self.cells.len() - num_fixed,
            num_fixed,
            num_nets: self.nets.len(),
            num_pins: self.pins.len(),
            num_sequential,
            max_net_degree,
            avg_net_degree: if self.nets.is_empty() {
                0.0
            } else {
                total_degree as f64 / self.nets.len() as f64
            },
            utilization: movable_area / self.die.area(),
        }
    }

    /// Checks all cross-reference invariants. [`DesignBuilder::finish`]
    /// already runs this; it is public so mutated designs in tests can
    /// re-validate.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Invalid`] describing the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (i, net) in self.nets.iter().enumerate() {
            if net.pins.is_empty() {
                return Err(NetlistError::Invalid(format!("net {} empty", net.name)));
            }
            let drivers = net
                .pins
                .iter()
                .filter(|&&p| self.pin_direction(p) == PinDirection::Output)
                .count();
            if drivers != 1 || self.pin_direction(net.pins[0]) != PinDirection::Output {
                return Err(NetlistError::Invalid(format!(
                    "net {} driver invariant violated ({} drivers)",
                    net.name, drivers
                )));
            }
            for &p in &net.pins {
                if self.pins[p.index()].net != Some(NetId::new(i)) {
                    return Err(NetlistError::Invalid(format!(
                        "pin {} back-reference mismatch on net {}",
                        self.pin_label(p),
                        net.name
                    )));
                }
            }
        }
        for (i, pin) in self.pins.iter().enumerate() {
            let cell = &self.cells[pin.cell.index()];
            if cell.pins[pin.spec] != PinId::new(i) {
                return Err(NetlistError::Invalid(format!(
                    "cell {} pin table mismatch",
                    cell.name
                )));
            }
            if let Some(net) = pin.net {
                if !self.nets[net.index()].pins.contains(&PinId::new(i)) {
                    return Err(NetlistError::Invalid(format!(
                        "pin {} not in its net's pin list",
                        self.pin_label(PinId::new(i))
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Fixed-cell seed positions recorded by [`DesignBuilder::add_fixed_cell`].
pub type FixedPositions = Vec<(CellId, f64, f64)>;

/// Incrementally builds a [`Design`], validating as it goes.
///
/// See the crate-level example for typical usage.
#[derive(Debug)]
pub struct DesignBuilder {
    name: String,
    library: CellLibrary,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    pins: Vec<Pin>,
    die: Rect,
    row_height: f64,
    sdc: Sdc,
    cell_names: HashMap<String, CellId>,
    net_names: HashMap<String, NetId>,
    fixed_positions: Vec<(CellId, f64, f64)>,
}

impl DesignBuilder {
    /// Starts a new design over `library` with the given die outline and
    /// standard row height.
    pub fn new(name: impl Into<String>, library: CellLibrary, die: Rect, row_height: f64) -> Self {
        Self {
            name: name.into(),
            library,
            cells: Vec::new(),
            nets: Vec::new(),
            pins: Vec::new(),
            die,
            row_height,
            sdc: Sdc::default(),
            cell_names: HashMap::new(),
            net_names: HashMap::new(),
            fixed_positions: Vec::new(),
        }
    }

    /// Sets the timing constraints.
    pub fn set_sdc(&mut self, sdc: Sdc) {
        self.sdc = sdc;
    }

    /// Adds a movable cell instance of master `type_name`.
    ///
    /// # Errors
    ///
    /// Returns an error if the master is unknown or the instance name is
    /// already taken.
    pub fn add_cell(&mut self, name: &str, type_name: &str) -> Result<CellId, NetlistError> {
        self.add_cell_inner(name, type_name, false)
    }

    /// Adds a fixed cell (IO pad, macro) pinned at `(x, y)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DesignBuilder::add_cell`].
    pub fn add_fixed_cell(
        &mut self,
        name: &str,
        type_name: &str,
        x: f64,
        y: f64,
    ) -> Result<CellId, NetlistError> {
        let id = self.add_cell_inner(name, type_name, true)?;
        self.fixed_positions.push((id, x, y));
        Ok(id)
    }

    fn add_cell_inner(
        &mut self,
        name: &str,
        type_name: &str,
        fixed: bool,
    ) -> Result<CellId, NetlistError> {
        let type_id = self
            .library
            .by_name(type_name)
            .ok_or_else(|| NetlistError::UnknownCellType(type_name.to_string()))?;
        if self.cell_names.contains_key(name) {
            return Err(NetlistError::DuplicateName(name.to_string()));
        }
        let id = CellId::new(self.cells.len());
        let num_pins = self.library.get(type_id).pins.len();
        let mut pin_ids = Vec::with_capacity(num_pins);
        for spec in 0..num_pins {
            let pid = PinId::new(self.pins.len());
            self.pins.push(Pin {
                cell: id,
                spec,
                net: None,
            });
            pin_ids.push(pid);
        }
        self.cells.push(Cell {
            name: name.to_string(),
            type_id,
            fixed,
            pins: pin_ids,
        });
        self.cell_names.insert(name.to_string(), id);
        Ok(id)
    }

    /// Connects the listed `(cell, pin_name)` terminals with a new net.
    /// Exactly one terminal must be an output pin; it becomes the driver.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown pins, duplicate net names, wrong driver
    /// counts, or pins that already belong to another net.
    pub fn add_net(
        &mut self,
        name: &str,
        terminals: &[(CellId, &str)],
    ) -> Result<NetId, NetlistError> {
        if self.net_names.contains_key(name) {
            return Err(NetlistError::DuplicateName(name.to_string()));
        }
        let net_id = NetId::new(self.nets.len());
        let mut driver: Option<PinId> = None;
        let mut sinks: Vec<PinId> = Vec::with_capacity(terminals.len().saturating_sub(1));
        for &(cell, pin_name) in terminals {
            let ty = self.library.get(self.cells[cell.index()].type_id);
            let spec = ty
                .pin_index(pin_name)
                .ok_or_else(|| NetlistError::UnknownPin {
                    cell_type: ty.name.clone(),
                    pin: pin_name.to_string(),
                })?;
            let pid = self.cells[cell.index()].pins[spec];
            if self.pins[pid.index()].net.is_some() {
                return Err(NetlistError::PinReconnected {
                    net: name.to_string(),
                    cell: self.cells[cell.index()].name.clone(),
                    pin: pin_name.to_string(),
                });
            }
            if ty.pins[spec].direction == PinDirection::Output {
                if driver.is_some() {
                    return Err(NetlistError::BadDriverCount {
                        net: name.to_string(),
                        drivers: 2,
                    });
                }
                driver = Some(pid);
            } else {
                sinks.push(pid);
            }
        }
        let driver = driver.ok_or(NetlistError::BadDriverCount {
            net: name.to_string(),
            drivers: 0,
        })?;
        let mut pins = Vec::with_capacity(sinks.len() + 1);
        pins.push(driver);
        pins.extend(sinks);
        for &p in &pins {
            self.pins[p.index()].net = Some(net_id);
        }
        self.nets.push(Net {
            name: name.to_string(),
            pins,
        });
        self.net_names.insert(name.to_string(), net_id);
        Ok(net_id)
    }

    /// Finalizes the design, running full validation.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Invalid`] if any structural invariant fails.
    pub fn finish(self) -> Result<Design, NetlistError> {
        let design = Design {
            name: self.name,
            library: self.library,
            cells: self.cells,
            nets: self.nets,
            pins: self.pins,
            die: self.die,
            row_height: self.row_height,
            sdc: self.sdc,
        };
        design.validate()?;
        Ok(design)
    }

    /// The pinned positions registered via [`DesignBuilder::add_fixed_cell`],
    /// to seed an initial [`crate::Placement`].
    pub fn fixed_positions(&self) -> &[(CellId, f64, f64)] {
        &self.fixed_positions
    }

    /// Consumes the builder, returning the design and the fixed-cell
    /// positions together.
    ///
    /// # Errors
    ///
    /// Same as [`DesignBuilder::finish`].
    pub fn finish_with_positions(mut self) -> Result<(Design, FixedPositions), NetlistError> {
        let fixed = std::mem::take(&mut self.fixed_positions);
        let design = self.finish()?;
        Ok((design, fixed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellLibrary;

    fn small_builder() -> DesignBuilder {
        DesignBuilder::new(
            "t",
            CellLibrary::standard(),
            Rect::new(0.0, 0.0, 100.0, 100.0),
            10.0,
        )
    }

    #[test]
    fn build_and_validate_chain() {
        let mut b = small_builder();
        let pi = b.add_fixed_cell("pi", "IOPAD_IN", 0.0, 50.0).unwrap();
        let u1 = b.add_cell("u1", "INV_X1").unwrap();
        let po = b.add_fixed_cell("po", "IOPAD_OUT", 100.0, 50.0).unwrap();
        b.add_net("n0", &[(pi, "PAD"), (u1, "A")]).unwrap();
        b.add_net("n1", &[(u1, "Y"), (po, "PAD")]).unwrap();
        let d = b.finish().unwrap();
        assert_eq!(d.num_cells(), 3);
        assert_eq!(d.num_nets(), 2);
        let stats = d.stats();
        assert_eq!(stats.num_fixed, 2);
        assert_eq!(stats.num_movable, 1);
        assert_eq!(stats.max_net_degree, 2);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn net_driver_is_first_pin() {
        let mut b = small_builder();
        let u1 = b.add_cell("u1", "INV_X1").unwrap();
        let u2 = b.add_cell("u2", "INV_X1").unwrap();
        // Sink listed before driver; builder must normalize.
        let n = b.add_net("n", &[(u2, "A"), (u1, "Y")]).unwrap();
        let d = {
            let pi = b.add_fixed_cell("pi", "IOPAD_IN", 0.0, 0.0).unwrap();
            let po = b.add_fixed_cell("po", "IOPAD_OUT", 0.0, 0.0).unwrap();
            b.add_net("ni", &[(pi, "PAD"), (u1, "A")]).unwrap();
            b.add_net("no", &[(u2, "Y"), (po, "PAD")]).unwrap();
            b.finish().unwrap()
        };
        let net = d.net(n);
        assert_eq!(d.pin_direction(net.driver()), PinDirection::Output);
        assert_eq!(net.sinks().len(), 1);
    }

    #[test]
    fn error_cases() {
        let mut b = small_builder();
        assert!(matches!(
            b.add_cell("x", "NOPE"),
            Err(NetlistError::UnknownCellType(_))
        ));
        let u1 = b.add_cell("u1", "INV_X1").unwrap();
        assert!(matches!(
            b.add_cell("u1", "INV_X1"),
            Err(NetlistError::DuplicateName(_))
        ));
        assert!(matches!(
            b.add_net("n", &[(u1, "Z")]),
            Err(NetlistError::UnknownPin { .. })
        ));
        // No driver.
        assert!(matches!(
            b.add_net("n", &[(u1, "A")]),
            Err(NetlistError::BadDriverCount { drivers: 0, .. })
        ));
        // Two drivers.
        let u2 = b.add_cell("u2", "INV_X1").unwrap();
        assert!(matches!(
            b.add_net("n", &[(u1, "Y"), (u2, "Y")]),
            Err(NetlistError::BadDriverCount { drivers: 2, .. })
        ));
        // Reconnection.
        b.add_net("n1", &[(u1, "Y"), (u2, "A")]).unwrap();
        assert!(matches!(
            b.add_net("n2", &[(u1, "Y")]),
            Err(NetlistError::PinReconnected { .. })
        ));
    }

    #[test]
    fn rows_cover_die() {
        let mut b = small_builder();
        let pi = b.add_fixed_cell("pi", "IOPAD_IN", 0.0, 0.0).unwrap();
        let u = b.add_cell("u", "INV_X1").unwrap();
        b.add_net("n", &[(pi, "PAD"), (u, "A")]).unwrap();
        let po = b.add_fixed_cell("po", "IOPAD_OUT", 0.0, 0.0).unwrap();
        b.add_net("n2", &[(u, "Y"), (po, "PAD")]).unwrap();
        let d = b.finish().unwrap();
        let rows = d.rows();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].y, 0.0);
        assert_eq!(rows[9].y, 90.0);
        for r in rows {
            assert_eq!(r.height, 10.0);
            assert_eq!(r.lx, 0.0);
            assert_eq!(r.ux, 100.0);
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = NetlistError::BadDriverCount {
            net: "n1".into(),
            drivers: 0,
        };
        assert!(e.to_string().contains("n1"));
        assert!(e.to_string().contains("0 drivers"));
    }
}

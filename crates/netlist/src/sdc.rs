//! Timing constraints (an SDC subset).
//!
//! Only the constraints the ICCAD-2015 flow uses are modeled: a single
//! clock, default input arrival times at primary inputs, and default output
//! required times at primary outputs, with optional per-cell overrides keyed
//! by the IO pad cell.

use crate::ids::CellId;
use std::collections::HashMap;

/// Timing constraints for a design.
///
/// All times share the delay unit of the cell library (picosecond-like).
#[derive(Debug, Clone, PartialEq)]
pub struct Sdc {
    /// Clock period; setup checks compare data arrival against this.
    pub clock_period: f64,
    /// Default arrival time at primary inputs.
    pub input_arrival: f64,
    /// Default extra margin subtracted at primary outputs (output delay).
    pub output_delay: f64,
    overrides_arrival: HashMap<CellId, f64>,
    overrides_output: HashMap<CellId, f64>,
}

impl Default for Sdc {
    fn default() -> Self {
        Self {
            clock_period: 1000.0,
            input_arrival: 0.0,
            output_delay: 0.0,
            overrides_arrival: HashMap::new(),
            overrides_output: HashMap::new(),
        }
    }
}

impl Sdc {
    /// Creates constraints with the given clock period and zero IO delays.
    pub fn new(clock_period: f64) -> Self {
        Self {
            clock_period,
            ..Self::default()
        }
    }

    /// Overrides the arrival time at one primary-input pad.
    pub fn set_input_arrival(&mut self, pad: CellId, arrival: f64) {
        self.overrides_arrival.insert(pad, arrival);
    }

    /// Overrides the output delay at one primary-output pad.
    pub fn set_output_delay(&mut self, pad: CellId, delay: f64) {
        self.overrides_output.insert(pad, delay);
    }

    /// Arrival time at a primary-input pad.
    pub fn arrival_at(&self, pad: CellId) -> f64 {
        self.overrides_arrival
            .get(&pad)
            .copied()
            .unwrap_or(self.input_arrival)
    }

    /// Output delay at a primary-output pad.
    pub fn output_delay_at(&self, pad: CellId) -> f64 {
        self.overrides_output
            .get(&pad)
            .copied()
            .unwrap_or(self.output_delay)
    }

    /// Required time at a primary output: `clock_period - output_delay`.
    pub fn required_at_output(&self, pad: CellId) -> f64 {
        self.clock_period - self.output_delay_at(pad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_overrides() {
        let mut sdc = Sdc::new(500.0);
        assert_eq!(sdc.clock_period, 500.0);
        let pad = CellId::new(3);
        assert_eq!(sdc.arrival_at(pad), 0.0);
        assert_eq!(sdc.required_at_output(pad), 500.0);
        sdc.set_input_arrival(pad, 20.0);
        sdc.set_output_delay(pad, 30.0);
        assert_eq!(sdc.arrival_at(pad), 20.0);
        assert_eq!(sdc.required_at_output(pad), 470.0);
        // Other pads keep the defaults.
        assert_eq!(sdc.arrival_at(CellId::new(4)), 0.0);
    }
}

//! Cell coordinates and derived geometry.

use crate::design::Design;
use crate::ids::{CellId, NetId, PinId};

/// Cell lower-left coordinates, indexed by [`CellId`].
///
/// A `Placement` is intentionally separate from the [`Design`]: the placer
/// iterates over many candidate placements of one immutable design.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    x: Vec<f64>,
    y: Vec<f64>,
}

impl Placement {
    /// Creates an all-zero placement sized for `design`.
    pub fn new(design: &Design) -> Self {
        Self {
            x: vec![0.0; design.num_cells()],
            y: vec![0.0; design.num_cells()],
        }
    }

    /// Creates a placement from raw coordinate vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn from_coords(x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "coordinate vectors must match");
        Self { x, y }
    }

    /// Number of cells covered.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the placement is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Lower-left position of a cell.
    pub fn get(&self, cell: CellId) -> (f64, f64) {
        (self.x[cell.index()], self.y[cell.index()])
    }

    /// Sets the lower-left position of a cell.
    pub fn set(&mut self, cell: CellId, x: f64, y: f64) {
        self.x[cell.index()] = x;
        self.y[cell.index()] = y;
    }

    /// Raw x coordinates (cell order).
    pub fn xs(&self) -> &[f64] {
        &self.x
    }

    /// Raw y coordinates (cell order).
    pub fn ys(&self) -> &[f64] {
        &self.y
    }

    /// Mutable raw x coordinates.
    pub fn xs_mut(&mut self) -> &mut [f64] {
        &mut self.x
    }

    /// Mutable raw y coordinates.
    pub fn ys_mut(&mut self) -> &mut [f64] {
        &mut self.y
    }

    /// Center position of a cell given its master footprint.
    pub fn cell_center(&self, design: &Design, cell: CellId) -> (f64, f64) {
        let ty = design.cell_type(cell);
        (
            self.x[cell.index()] + ty.width / 2.0,
            self.y[cell.index()] + ty.height / 2.0,
        )
    }

    /// Absolute position of a pin: cell origin plus the master pin offset.
    pub fn pin_position(&self, design: &Design, pin: PinId) -> (f64, f64) {
        let p = design.pin(pin);
        let spec = design.pin_spec(pin);
        (
            self.x[p.cell.index()] + spec.dx,
            self.y[p.cell.index()] + spec.dy,
        )
    }

    /// Exact half-perimeter wirelength of one net.
    pub fn net_hpwl(&self, design: &Design, net: NetId) -> f64 {
        let pins = &design.net(net).pins;
        if pins.len() < 2 {
            return 0.0;
        }
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for &p in pins {
            let (px, py) = self.pin_position(design, p);
            min_x = min_x.min(px);
            max_x = max_x.max(px);
            min_y = min_y.min(py);
            max_y = max_y.max(py);
        }
        (max_x - min_x) + (max_y - min_y)
    }

    /// Exact total half-perimeter wirelength over all nets.
    pub fn total_hpwl(&self, design: &Design) -> f64 {
        design.net_ids().map(|n| self.net_hpwl(design, n)).sum()
    }

    /// Manhattan distance between two pins.
    pub fn pin_manhattan(&self, design: &Design, a: PinId, b: PinId) -> f64 {
        let (ax, ay) = self.pin_position(design, a);
        let (bx, by) = self.pin_position(design, b);
        (ax - bx).abs() + (ay - by).abs()
    }

    /// Euclidean distance between two pins.
    pub fn pin_euclidean(&self, design: &Design, a: PinId, b: PinId) -> f64 {
        let (ax, ay) = self.pin_position(design, a);
        let (bx, by) = self.pin_position(design, b);
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// A bitwise fingerprint of the placement: FNV-1a over the IEEE-754
    /// bit patterns of every coordinate in cell order.
    ///
    /// Two placements hash equal iff they are bit-identical (modulo hash
    /// collisions), so the fingerprint can stand in for the full
    /// coordinate vectors in differential guarantees — e.g. "a placement
    /// computed by the serve daemon matches a local run" — without
    /// shipping or retaining the placement itself. `-0.0` and `0.0` hash
    /// differently, as do different NaN payloads: this is equality of
    /// bits, not of numbers.
    pub fn content_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut eat = |v: f64| {
            for byte in v.to_bits().to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        for &x in &self.x {
            eat(x);
        }
        for &y in &self.y {
            eat(y);
        }
        h
    }

    /// Clamps every movable cell inside the die (fixed cells untouched).
    pub fn clamp_to_die(&mut self, design: &Design) {
        let die = design.die();
        for cell in design.cell_ids() {
            if design.cell(cell).fixed {
                continue;
            }
            let ty = design.cell_type(cell);
            let i = cell.index();
            self.x[i] = self.x[i].clamp(die.lx, (die.ux - ty.width).max(die.lx));
            self.y[i] = self.y[i].clamp(die.ly, (die.uy - ty.height).max(die.ly));
        }
    }
}

/// Tracks which cells moved since a reference snapshot — the feed for
/// incremental timing analysis.
///
/// The placement engine rebases the tracker every time the timing
/// objective consumes the moved set. "Moved" means "displaced more than
/// `threshold` (Manhattan) since the cell's position was last consumed":
/// [`MoveTracker::rebase`] only advances the reference of cells that
/// currently exceed the threshold, so sub-threshold drift keeps
/// accumulating across rebases and is reported once the *total* drift
/// crosses the threshold — a slowly creeping cell can never escape
/// refresh forever. With a threshold of 0 every nonzero displacement is
/// reported and incremental analysis stays bit-identical to a full one;
/// a positive threshold trades exactness for fewer RC rebuilds.
#[derive(Debug, Clone)]
pub struct MoveTracker {
    base_x: Vec<f64>,
    base_y: Vec<f64>,
    threshold: f64,
}

impl MoveTracker {
    /// Snapshots `placement` as the reference state.
    pub fn new(placement: &Placement, threshold: f64) -> Self {
        assert!(threshold >= 0.0, "negative move threshold");
        Self {
            base_x: placement.x.clone(),
            base_y: placement.y.clone(),
            threshold,
        }
    }

    /// The Manhattan displacement below which a cell counts as unmoved.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Cells displaced more than the threshold since the last rebase,
    /// sorted by cell index.
    ///
    /// # Panics
    ///
    /// Panics if `placement` covers a different cell count than the
    /// snapshot.
    pub fn moved_cells(&self, placement: &Placement) -> Vec<CellId> {
        assert_eq!(placement.len(), self.base_x.len(), "placement size changed");
        let mut moved = Vec::new();
        for i in 0..self.base_x.len() {
            let d =
                (placement.x[i] - self.base_x[i]).abs() + (placement.y[i] - self.base_y[i]).abs();
            if d > self.threshold {
                moved.push(CellId::new(i));
            }
        }
        moved
    }

    /// Advances the reference state of every cell currently reported by
    /// [`MoveTracker::moved_cells`], leaving sub-threshold drift in
    /// place so it still accumulates toward the threshold. Call after
    /// consuming the moved set.
    pub fn rebase(&mut self, placement: &Placement) {
        assert_eq!(placement.len(), self.base_x.len(), "placement size changed");
        for i in 0..self.base_x.len() {
            let d =
                (placement.x[i] - self.base_x[i]).abs() + (placement.y[i] - self.base_y[i]).abs();
            if d > self.threshold {
                self.base_x[i] = placement.x[i];
                self.base_y[i] = placement.y[i];
            }
        }
    }
}

/// One requested cell relocation: the unit of ECO move batches.
///
/// Coordinates are absolute lower-left positions, like [`Placement::set`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellMove {
    /// The cell to move.
    pub cell: CellId,
    /// New lower-left x.
    pub x: f64,
    /// New lower-left y.
    pub y: f64,
}

/// What a batch of applied moves dirtied: the input contract of the
/// incremental analyses.
///
/// Both lists are sorted by index and deduplicated, matching the order
/// [`MoveTracker::moved_cells`] reports and the order incremental STA
/// expects, so a `DirtySummary` can be fed straight into
/// `Sta::analyze_incremental` / `CongestionAnalyzer::analyze_incremental`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtySummary {
    /// Cells whose coordinates changed, sorted by cell index, deduplicated.
    pub moved_cells: Vec<CellId>,
    /// Nets with at least one pin on a moved cell, sorted, deduplicated.
    pub dirty_nets: Vec<NetId>,
}

impl DirtySummary {
    /// Builds the summary for a set of moved cells: sorts and dedups the
    /// cells, then collects every net incident to them, sorted and deduped.
    pub fn from_moved_cells(design: &Design, moved: &[CellId]) -> Self {
        let mut moved_cells = moved.to_vec();
        moved_cells.sort_unstable();
        moved_cells.dedup();
        let mut dirty_nets = Vec::new();
        for &cell in &moved_cells {
            for &pin in &design.cell(cell).pins {
                if let Some(net) = design.pin(pin).net {
                    dirty_nets.push(net);
                }
            }
        }
        dirty_nets.sort_unstable();
        dirty_nets.dedup();
        Self {
            moved_cells,
            dirty_nets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{DesignBuilder, Rect};
    use crate::library::CellLibrary;

    fn two_inv_design() -> (Design, CellId, CellId) {
        let mut b = DesignBuilder::new(
            "t",
            CellLibrary::standard(),
            Rect::new(0.0, 0.0, 100.0, 100.0),
            10.0,
        );
        let pi = b.add_fixed_cell("pi", "IOPAD_IN", 0.0, 50.0).unwrap();
        let u1 = b.add_cell("u1", "INV_X1").unwrap();
        let u2 = b.add_cell("u2", "INV_X1").unwrap();
        let po = b.add_fixed_cell("po", "IOPAD_OUT", 96.0, 50.0).unwrap();
        b.add_net("n0", &[(pi, "PAD"), (u1, "A")]).unwrap();
        b.add_net("n1", &[(u1, "Y"), (u2, "A")]).unwrap();
        b.add_net("n2", &[(u2, "Y"), (po, "PAD")]).unwrap();
        (b.finish().unwrap(), u1, u2)
    }

    #[test]
    fn pin_positions_include_offsets() {
        let (d, u1, _) = two_inv_design();
        let mut p = Placement::new(&d);
        p.set(u1, 10.0, 20.0);
        let a = d.cell(u1).pins[0];
        let y = d.cell(u1).pins[1];
        assert_eq!(p.pin_position(&d, a), (10.0, 25.0)); // A at (0, h/2)
        assert_eq!(p.pin_position(&d, y), (12.0, 25.0)); // Y at (w, h/2)
    }

    #[test]
    fn hpwl_matches_hand_computation() {
        let (d, u1, u2) = two_inv_design();
        let mut p = Placement::new(&d);
        // pi fixed at (0,50), po at (96,50); pads PAD offset (2, 5).
        p.set(d.find_cell("pi").unwrap(), 0.0, 50.0);
        p.set(d.find_cell("po").unwrap(), 96.0, 50.0);
        p.set(u1, 30.0, 50.0);
        p.set(u2, 60.0, 50.0);
        // n0: pi PAD (2,55) -> u1 A (30,55): HPWL 28.
        let n0 = d.net(crate::ids::NetId::new(0));
        assert_eq!(n0.name, "n0");
        assert!((p.net_hpwl(&d, crate::ids::NetId::new(0)) - 28.0).abs() < 1e-12);
        // Total is the sum of per-net values.
        let total: f64 = d.net_ids().map(|n| p.net_hpwl(&d, n)).sum();
        assert!((p.total_hpwl(&d) - total).abs() < 1e-12);
    }

    #[test]
    fn distances_are_consistent() {
        let (d, u1, u2) = two_inv_design();
        let mut p = Placement::new(&d);
        p.set(u1, 0.0, 0.0);
        p.set(u2, 30.0, 40.0);
        let y1 = d.cell(u1).pins[1];
        let a2 = d.cell(u2).pins[0];
        let man = p.pin_manhattan(&d, y1, a2);
        let euc = p.pin_euclidean(&d, y1, a2);
        assert!(euc <= man + 1e-12);
        assert!(euc >= man / std::f64::consts::SQRT_2 - 1e-12);
    }

    #[test]
    fn move_tracker_reports_and_rebases() {
        let (d, u1, u2) = two_inv_design();
        let mut p = Placement::new(&d);
        p.set(u1, 10.0, 10.0);
        p.set(u2, 50.0, 50.0);
        let mut tracker = MoveTracker::new(&p, 1.0);
        assert!(tracker.moved_cells(&p).is_empty());

        // Sub-threshold drift is invisible; a real move is reported.
        p.set(u1, 10.4, 10.4); // Manhattan 0.8 <= 1.0
        assert!(tracker.moved_cells(&p).is_empty());
        p.set(u2, 60.0, 50.0);
        assert_eq!(tracker.moved_cells(&p), vec![u2]);

        // Rebase forgets consumed moves but keeps sub-threshold drift.
        tracker.rebase(&p);
        assert!(tracker.moved_cells(&p).is_empty());

        // A second sub-threshold step pushes the *accumulated* drift of
        // u1 over the threshold: 0.8 + 0.8 = 1.6 > 1.0. A tracker that
        // snapshotted everything at rebase would miss this forever.
        p.set(u1, 10.8, 10.8);
        assert_eq!(tracker.moved_cells(&p), vec![u1]);
        tracker.rebase(&p);
        assert!(tracker.moved_cells(&p).is_empty());

        // Zero threshold reports any nonzero displacement, sorted.
        let mut exact = MoveTracker::new(&p, 0.0);
        p.set(u2, 60.0, 50.0 + 1e-12);
        p.set(u1, 10.4 - 1e-12, 10.4);
        let moved = exact.moved_cells(&p);
        assert_eq!(moved, vec![u1, u2]);
        exact.rebase(&p);
        assert!(exact.moved_cells(&p).is_empty());
    }

    #[test]
    fn content_hash_tracks_bit_level_changes() {
        let (d, u1, _) = two_inv_design();
        let mut p = Placement::new(&d);
        p.set(u1, 10.0, 20.0);
        let h0 = p.content_hash();
        assert_eq!(h0, p.clone().content_hash(), "clones hash equal");
        // The smallest representable nudge changes the hash.
        p.set(u1, f64::from_bits(10.0f64.to_bits() + 1), 20.0);
        assert_ne!(h0, p.content_hash());
        // Bit-equality, not numeric equality: -0.0 differs from 0.0.
        let mut a = Placement::new(&d);
        let mut b = Placement::new(&d);
        a.set(u1, 0.0, 0.0);
        b.set(u1, -0.0, 0.0);
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn clamp_keeps_cells_inside() {
        let (d, u1, _) = two_inv_design();
        let mut p = Placement::new(&d);
        p.set(u1, -50.0, 1e6);
        p.clamp_to_die(&d);
        let (x, y) = p.get(u1);
        let ty = d.cell_type(u1);
        assert!(x >= 0.0 && x + ty.width <= 100.0);
        assert!(y >= 0.0 && y + ty.height <= 100.0);
        // Fixed cells are not clamped.
        let po = d.find_cell("po").unwrap();
        p.set(po, -5.0, -5.0);
        p.clamp_to_die(&d);
        assert_eq!(p.get(po), (-5.0, -5.0));
    }
}

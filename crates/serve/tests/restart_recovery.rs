//! Crash-consistency of the journaled daemon: SIGKILL a `tdp-serve`
//! mid-flight, restart it on the same journal, and the recovered state
//! must be indistinguishable from never having crashed —
//!
//! * a job that finished before the kill is restored **byte-identically**
//!   (its `wait` response, report included, is the exact pre-crash
//!   response, and its event stream resumes by offset with no gap and no
//!   duplicate);
//! * jobs that were queued or running re-run deterministically, landing
//!   on the same report bits (placement fingerprint included) as an
//!   uninterrupted daemon;
//! * under `--no-replay`, interrupted jobs resolve as failed-by-restart
//!   instead, through the normal finish path.
//!
//! The daemon runs as a real subprocess (spawned from
//! `CARGO_BIN_EXE_tdp-serve`) because `Child::kill` — SIGKILL on unix —
//! is the only honest way to test fsync boundaries: no destructors, no
//! flushes, no goodbye.

use benchgen::CircuitParams;
use serve::{Client, DesignRef, Server, ServerConfig, SubmitRequest};
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, SystemTime};
use tdp_jsonio::JsonValue;

fn temp_dir(tag: &str) -> PathBuf {
    let nanos = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .expect("clock after epoch")
        .as_nanos();
    let dir = std::env::temp_dir().join(format!("tdp-{tag}-{}-{nanos}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(journal: &Path, extra: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_tdp-serve"))
            .args(["--addr", "127.0.0.1:0", "--workers", "1", "--journal"])
            .arg(journal)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn tdp-serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        // "tdp-serve listening on 127.0.0.1:PORT (1 workers, cache 8)"
        let banner = lines.next().expect("banner line").expect("read banner");
        let addr = banner
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
            .to_string();
        // Keep draining stdout so the daemon can never block on a full
        // pipe.
        std::thread::spawn(move || lines.for_each(drop));
        Self { child, addr }
    }

    fn connect(&self) -> Client {
        Client::connect(self.addr.as_str(), Duration::from_secs(5)).expect("connect to daemon")
    }

    /// SIGKILL — no shutdown handshake, no flush.
    fn kill(mut self) {
        self.child.kill().expect("kill daemon");
        self.child.wait().expect("reap daemon");
    }

    /// Clean exit after a wire `shutdown`.
    fn wait(mut self) {
        self.child.wait().expect("daemon exit");
    }
}

/// The three-job workload both legs run: two quick jobs on a small
/// design plus one heavy enough that the kill always lands before it
/// finishes (so at least one job exercises the re-enqueue path), with a
/// tight stride so every job streams several events.
fn requests() -> Vec<SubmitRequest> {
    let small = CircuitParams::small("rr", 11);
    let heavy = CircuitParams {
        num_comb: 4000,
        ..CircuitParams::small("rr-heavy", 7)
    };
    [
        (small.clone(), "efficient-tdp"),
        (small, "dreamplace4"),
        (heavy, "efficient-tdp"),
    ]
    .into_iter()
    .map(|(params, objective)| SubmitRequest {
        design: DesignRef::Inline(params),
        objective: objective.to_string(),
        profile: "quick".to_string(),
        overrides: Vec::new(),
        stride: Some(2),
    })
    .collect()
}

/// The deterministic slice of a `wait` response's report — everything
/// except wall-clock runtimes and allocator-dependent counters. Values
/// compare as their encoded JSON, so float comparisons are bitwise
/// (equal bits render equal bytes through the one shared formatter).
fn det_fields(doc: &JsonValue) -> Vec<(String, String)> {
    let report = doc
        .get("report")
        .unwrap_or_else(|| panic!("report missing in {}", doc.encode()));
    [
        "status",
        "iterations",
        "legal",
        "cells",
        "nets",
        "placement_hash",
        "congestion_map_hash",
        "tns",
        "wns",
        "hpwl",
        "failing_endpoints",
        "total_endpoints",
        "congestion_peak",
        "congestion_overflow",
        "congestion_overflow_bins",
    ]
    .iter()
    .map(|key| {
        let value = report.get(key).map(JsonValue::encode).unwrap_or_default();
        ((*key).to_string(), value)
    })
    .collect()
}

#[test]
fn killed_daemon_recovers_jobs_reports_and_event_streams() {
    // The uninterrupted baseline: same workload, in-process server, no
    // journal, no crash.
    let (base_waits, base_events) = {
        let handle = Server::start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        })
        .expect("baseline server");
        let mut client =
            Client::connect(handle.addr(), Duration::from_secs(5)).expect("connect baseline");
        let ids: Vec<usize> = requests()
            .iter()
            .map(|r| client.submit(r).expect("baseline submit"))
            .collect();
        let waits: Vec<JsonValue> = ids
            .iter()
            .map(|&id| client.wait(id).expect("baseline wait"))
            .collect();
        let events: Vec<Vec<String>> = ids
            .iter()
            .map(|&id| {
                let mut lines = Vec::new();
                client
                    .events(id, 0, |e| lines.push(e.encode()))
                    .expect("baseline events");
                lines
            })
            .collect();
        client.shutdown().expect("baseline shutdown");
        handle.join();
        (waits, events)
    };

    // The crash leg: journaled subprocess daemon. Job 0 is submitted
    // alone and awaited so its finished record is journaled; jobs 1 and
    // 2 are submitted right before the kill, so the kill lands while
    // they are still queued or barely running (the submit round-trips
    // are a few milliseconds; the jobs take orders of magnitude more).
    // Their submit records are durable — the daemon fsyncs the journal
    // before acknowledging a submit.
    let dir = temp_dir("restart");
    let daemon = Daemon::spawn(&dir, &[]);
    let mut client = daemon.connect();
    let reqs = requests();
    client.submit(&reqs[0]).expect("submit job 0");
    let wait0_before = client.wait(0).expect("wait job 0").encode();
    let mut events0_before = Vec::new();
    client
        .events(0, 0, |e| events0_before.push(e.encode()))
        .expect("events job 0");
    client.submit(&reqs[1]).expect("submit job 1");
    client.submit(&reqs[2]).expect("submit job 2");
    daemon.kill();
    drop(client);

    // Restart on the same journal.
    let daemon = Daemon::spawn(&dir, &[]);
    let mut client = daemon.connect();

    // The finished job is restored bitwise: the exact pre-crash bytes.
    assert_eq!(
        client.wait(0).expect("wait restored job").encode(),
        wait0_before,
        "restored report must be byte-identical to the pre-crash response"
    );

    // Interrupted jobs re-ran deterministically to the baseline's bits.
    for id in [1usize, 2] {
        let doc = client.wait(id).expect("wait re-run job");
        assert_eq!(
            doc.get("state").and_then(JsonValue::as_str),
            Some("done"),
            "{}",
            doc.encode()
        );
        assert_eq!(
            det_fields(&doc),
            det_fields(&base_waits[id]),
            "job {id} diverged from the uninterrupted run"
        );
    }

    // `events --from` resumes across the restart: no gap, no duplicate.
    let k = events0_before.len() / 2;
    let mut resumed = Vec::new();
    client
        .events(0, k, |e| resumed.push(e.encode()))
        .expect("resume events");
    assert_eq!(resumed, events0_before[k..], "resumed suffix must match");
    // From past the terminal event: one explicit `end` line.
    let mut tail = Vec::new();
    let end = client
        .events(0, events0_before.len(), |e| tail.push(e.encode()))
        .expect("past-the-end events");
    assert_eq!(tail.len(), 1, "{tail:?}");
    assert_eq!(end.get("event").and_then(JsonValue::as_str), Some("end"));
    assert_eq!(end.get("state").and_then(JsonValue::as_str), Some("done"));

    // Re-run jobs regenerated their streams line for line (the terminal
    // line embeds the report, whose wall-clock fields differ).
    for id in [1usize, 2] {
        let mut lines = Vec::new();
        client
            .events(id, 0, |e| lines.push(e.encode()))
            .expect("re-run events");
        let base = &base_events[id];
        assert_eq!(lines.len(), base.len(), "job {id} event count");
        assert_eq!(
            lines[..lines.len() - 1],
            base[..base.len() - 1],
            "job {id} events diverged"
        );
    }

    // Recovery accounting: all three jobs recovered, the journal both
    // replayed and kept appending, and only the re-runs counted `done`.
    let metrics = client.metrics().expect("metrics");
    let get = |key: &str| {
        metrics
            .get(key)
            .and_then(JsonValue::as_usize)
            .unwrap_or_else(|| panic!("metric {key} missing in {}", metrics.encode()))
    };
    assert_eq!(get("jobs_recovered"), 3);
    assert_eq!(get("jobs"), 3);
    // Job 0 was restored (it had finished and journaled before the
    // kill) and must not re-count `done`. Job 1 is small enough that it
    // *may* sneak in a finished record before the kill (then it is
    // restored, not re-run); job 2 cannot — it runs after job 1 on the
    // single worker and takes far longer than the kill window — so at
    // least one job always re-ran and counted.
    let done = get("done");
    assert!(
        (1..=2).contains(&done),
        "done = {done}: restored jobs must not re-count done, re-runs must"
    );
    assert!(get("journal_replays") > 0);
    assert!(get("journal_appends") > 0, "re-runs must journal again");

    // And the same counters scrape in Prometheus exposition format.
    let text = client.metrics_text().expect("metrics_text");
    assert!(
        text.contains("# TYPE tdp_serve_journal_appends_total counter"),
        "{text}"
    );
    assert!(
        text.lines()
            .any(|l| l == "tdp_serve_jobs_recovered_total 3"),
        "{text}"
    );

    client.shutdown().expect("shutdown");
    daemon.wait();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn no_replay_resolves_interrupted_jobs_as_failed() {
    let dir = temp_dir("noreplay");
    let daemon = Daemon::spawn(&dir, &[]);
    let mut client = daemon.connect();
    // Big enough that the kill always lands before the job finishes.
    let req = SubmitRequest {
        design: DesignRef::Inline(CircuitParams {
            num_comb: 4000,
            ..CircuitParams::small("rr-big", 3)
        }),
        objective: "efficient-tdp".to_string(),
        profile: "paper".to_string(),
        overrides: Vec::new(),
        stride: None,
    };
    let id = client.submit(&req).expect("submit");
    daemon.kill();
    drop(client);

    let daemon = Daemon::spawn(&dir, &["--no-replay"]);
    let mut client = daemon.connect();
    let doc = client.wait(id).expect("wait");
    assert_eq!(
        doc.get("state").and_then(JsonValue::as_str),
        Some("failed"),
        "{}",
        doc.encode()
    );
    let error = doc
        .get("report")
        .and_then(|r| r.get("error"))
        .and_then(JsonValue::as_str)
        .unwrap_or_default();
    assert!(error.contains("restart"), "{}", doc.encode());

    let metrics = client.metrics().expect("metrics");
    let get = |key: &str| metrics.get(key).and_then(JsonValue::as_usize);
    assert_eq!(get("jobs_recovered"), Some(1));
    assert_eq!(get("failed"), Some(1));

    client.shutdown().expect("shutdown");
    daemon.wait();
    std::fs::remove_dir_all(&dir).ok();
}

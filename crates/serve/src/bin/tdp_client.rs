//! `tdp-client` — submit, await and stream placement jobs against a
//! running `tdp-serve`.
//!
//! ```text
//! tdp-client [--addr HOST:PORT] [--retry SECS] <command>
//!
//! commands:
//!   submit --case NAME --objective NAME|all [--profile paper|quick]
//!          [--set key=value ...] [--stride K] [--await] [--stream]
//!   submit --jobs FILE [--profile paper|quick] [--await]
//!   status JOB | wait JOB | events JOB [--from I] | cancel JOB
//!   metrics | metrics-text | trace [--out FILE] | shutdown
//!   eco --case NAME [--paths K] [--script FILE|-]
//! ```
//!
//! `eco` holds one connection open for an interactive ECO exchange:
//! it pins the case resident with `eco_open`, replays JSONL commands
//! from the script (`{"apply":[<deltas>]}`, `{"query":K}` or
//! `{"query":{"mode":"full","paths":K}}`, `{"revert":N|null}` — the
//! same grammar `tdp-eco --script` uses locally), prints each response
//! line, and closes with `eco_close` (whose ack carries the session's
//! cumulative stats). Without `--script` it opens, queries once and
//! closes — a readout ping.
//!
//! Every response prints as one raw JSON line, so the output composes
//! with `grep`/`jq`-style tooling (the CI smoke job greps it). With
//! `--await`, the final `wait` responses print instead of the submit
//! acks, and the exit code reflects the fleet: non-zero if any awaited
//! job `failed` or produced an illegal placement. Matching `tdp-batch`'s
//! exit policy, a `canceled` job is deliberate and stays green (its
//! partial placement is still checked for legality).
//!
//! The job-file grammar and the `all` objective sweep are the batch
//! crate's ([`batch::split_job_line`], [`batch::BUILTIN_OBJECTIVE_NAMES`])
//! — one vocabulary across `tdp-batch` and `tdp-client`.

use batch::{split_job_line, BUILTIN_OBJECTIVE_NAMES};
use serve::{Client, ClientError, SubmitRequest};
use std::time::Duration;
use tdp_jsonio::JsonValue;

const USAGE: &str = "usage: tdp-client [--addr HOST:PORT] [--retry SECS] <command>
  submit --case NAME --objective NAME|all [--profile paper|quick]
         [--set key=value ...] [--stride K] [--await] [--stream]
  submit --jobs FILE [--profile paper|quick] [--await]
  status JOB       non-blocking state poll
  wait JOB         block until terminal, print the final report
  events JOB [--from I]
                   stream progress events (from index I) until the job
                   finishes; resumes cleanly across daemon restarts
  cancel JOB       request cancellation
  metrics          server counters
  metrics-text     server counters in Prometheus text exposition format
  trace [--out FILE]
                   dump the server's resident span ring as a Chrome
                   trace document (to FILE, or stdout) — load it in
                   Perfetto or chrome://tracing
  shutdown         stop the server
  eco --case NAME [--paths K] [--script FILE|-]
                   interactive ECO exchange (JSONL apply/query/revert
                   script; omit --script for a single open/query/close)";

fn usage_err(msg: impl Into<String>) -> String {
    format!("{}\n{USAGE}", msg.into())
}

struct SubmitPlan {
    requests: Vec<SubmitRequest>,
    wait: bool,
    stream: bool,
}

fn parse_submit_args(mut args: std::vec::IntoIter<String>) -> Result<SubmitPlan, String> {
    let mut case: Option<String> = None;
    let mut objective: Option<String> = None;
    let mut jobs_file: Option<String> = None;
    let mut profile = "paper".to_string();
    let mut overrides: Vec<(String, String)> = Vec::new();
    let mut stride = None;
    let mut wait = false;
    let mut stream = false;
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| usage_err(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--case" => case = Some(value("--case")?),
            "--objective" => objective = Some(value("--objective")?),
            "--jobs" => jobs_file = Some(value("--jobs")?),
            "--profile" => profile = value("--profile")?,
            "--set" => {
                let kv = value("--set")?;
                let Some((k, v)) = kv.split_once('=') else {
                    return Err(usage_err(format!("--set expects key=value, got {kv:?}")));
                };
                overrides.push((k.to_string(), v.to_string()));
            }
            "--stride" => {
                stride = Some(
                    value("--stride")?
                        .parse()
                        .map_err(|_| usage_err("--stride expects a positive integer"))?,
                )
            }
            "--await" => wait = true,
            "--stream" => stream = true,
            other => return Err(usage_err(format!("unknown submit flag {other:?}"))),
        }
    }
    let mut requests = Vec::new();
    if let Some(path) = jobs_file {
        if case.is_some() || objective.is_some() {
            return Err(usage_err("--jobs replaces --case/--objective"));
        }
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        for (i, raw) in text.lines().enumerate() {
            // One grammar with tdp-batch: the shared job-file lexer.
            let Some((case, obj, fields)) =
                split_job_line(raw).map_err(|msg| format!("{path}:{}: {msg}", i + 1))?
            else {
                continue;
            };
            let mut line_overrides = overrides.clone();
            line_overrides.extend(fields);
            push_requests(&mut requests, case, obj, &profile, &line_overrides, stride);
        }
        if requests.is_empty() {
            return Err(format!("{path}: no jobs"));
        }
    } else {
        let case = case.ok_or_else(|| usage_err("submit needs --case (or --jobs FILE)"))?;
        let objective = objective.ok_or_else(|| usage_err("submit needs --objective"))?;
        push_requests(
            &mut requests,
            &case,
            &objective,
            &profile,
            &overrides,
            stride,
        );
    }
    Ok(SubmitPlan {
        requests,
        wait,
        stream,
    })
}

fn push_requests(
    requests: &mut Vec<SubmitRequest>,
    case: &str,
    objective: &str,
    profile: &str,
    overrides: &[(String, String)],
    stride: Option<usize>,
) {
    let objectives: Vec<&str> = if objective == "all" {
        BUILTIN_OBJECTIVE_NAMES.to_vec()
    } else {
        vec![objective]
    };
    for obj in objectives {
        let mut req = SubmitRequest::case(case, obj);
        req.profile = profile.to_string();
        req.overrides = overrides.to_vec();
        req.stride = stride;
        requests.push(req);
    }
}

/// Whether an awaited final status describes a successful job: `done`
/// or `canceled` (deliberate, same green-exit policy as `tdp-batch`),
/// with a legal placement either way.
fn job_succeeded(doc: &JsonValue) -> bool {
    let state_ok = matches!(
        doc.get("state").and_then(JsonValue::as_str),
        Some("done" | "canceled")
    );
    let legal = doc
        .get("report")
        .and_then(|r| r.get("legal"))
        .and_then(JsonValue::as_bool)
        == Some(true);
    state_ok && legal
}

fn run() -> Result<i32, String> {
    let mut addr = "127.0.0.1:7171".to_string();
    let mut retry = Duration::ZERO;
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Global flags precede the command.
    while let Some(first) = args.first().cloned() {
        match first.as_str() {
            "--addr" | "--retry" => {
                if args.len() < 2 {
                    return Err(usage_err(format!("{first} needs a value")));
                }
                let value = args.remove(1);
                args.remove(0);
                if first == "--addr" {
                    addr = value;
                } else {
                    let secs: u64 = value
                        .parse()
                        .map_err(|_| usage_err("--retry expects whole seconds"))?;
                    retry = Duration::from_secs(secs);
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(0);
            }
            _ => break,
        }
    }
    let Some(command) = args.first().cloned() else {
        return Err(usage_err("missing command"));
    };
    args.remove(0);

    let addrs: Vec<std::net::SocketAddr> = std::net::ToSocketAddrs::to_socket_addrs(&addr)
        .map_err(|e| format!("bad --addr {addr:?}: {e}"))?
        .collect();
    let mut client = Client::connect(addrs.as_slice(), retry)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;

    let job_arg = |args: &[String]| -> Result<usize, String> {
        args.first()
            .and_then(|a| a.parse().ok())
            .ok_or_else(|| usage_err(format!("{command} expects a job id")))
    };

    let print_doc = |doc: &JsonValue| println!("{}", doc.encode());
    let report = |r: Result<JsonValue, ClientError>| -> Result<i32, String> {
        match r {
            Ok(doc) => {
                print_doc(&doc);
                Ok(0)
            }
            Err(ClientError::Server(msg)) => {
                eprintln!("tdp-client: server error: {msg}");
                Ok(1)
            }
            Err(e) => Err(e.to_string()),
        }
    };

    match command.as_str() {
        "submit" => {
            let plan = parse_submit_args(args.into_iter())?;
            let mut ids = Vec::new();
            for req in &plan.requests {
                match client.submit(req) {
                    Ok(id) => {
                        if !plan.wait && !plan.stream {
                            // Print the ack only when nothing richer follows.
                            println!("{{\"ok\":true,\"cmd\":\"submit\",\"job\":{id}}}");
                        }
                        ids.push(id);
                    }
                    Err(ClientError::Server(msg)) => {
                        eprintln!("tdp-client: submit failed: {msg}");
                        return Ok(1);
                    }
                    Err(e) => return Err(e.to_string()),
                }
            }
            let mut failures = 0usize;
            if plan.stream {
                for &id in &ids {
                    let finished = client
                        .events(id, 0, |event| print_doc(event))
                        .map_err(|e| e.to_string())?;
                    let ok = matches!(
                        finished.get("state").and_then(JsonValue::as_str),
                        Some("done" | "canceled")
                    );
                    if !ok {
                        failures += 1;
                    }
                }
            } else if plan.wait {
                for &id in &ids {
                    let doc = client.wait(id).map_err(|e| e.to_string())?;
                    print_doc(&doc);
                    if !job_succeeded(&doc) {
                        failures += 1;
                    }
                }
            }
            Ok(if failures > 0 { 1 } else { 0 })
        }
        "status" => report(client.status(job_arg(&args)?)),
        "wait" => {
            let doc = client.wait(job_arg(&args)?).map_err(|e| e.to_string())?;
            print_doc(&doc);
            Ok(if job_succeeded(&doc) { 0 } else { 1 })
        }
        "events" => {
            let job = job_arg(&args)?;
            let mut from = 0usize;
            let mut it = args.iter().skip(1);
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--from" => {
                        from = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| usage_err("--from expects a non-negative integer"))?
                    }
                    other => return Err(usage_err(format!("unknown events flag {other:?}"))),
                }
            }
            client
                .events(job, from, |event| print_doc(event))
                .map_err(|e| e.to_string())?;
            Ok(0)
        }
        "cancel" => report(client.cancel(job_arg(&args)?)),
        "metrics" => report(client.metrics()),
        "metrics-text" => match client.metrics_text() {
            Ok(text) => {
                // The raw scrape body, not a JSON line: this output is
                // what a Prometheus scraper (or a human) consumes.
                print!("{text}");
                Ok(0)
            }
            Err(ClientError::Server(msg)) => {
                eprintln!("tdp-client: server error: {msg}");
                Ok(1)
            }
            Err(e) => Err(e.to_string()),
        },
        "trace" => {
            let mut out: Option<String> = None;
            let mut it = args.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--out" => {
                        out = Some(
                            it.next()
                                .cloned()
                                .ok_or_else(|| usage_err("--out needs a value"))?,
                        )
                    }
                    other => return Err(usage_err(format!("unknown trace flag {other:?}"))),
                }
            }
            match client.trace() {
                Ok(doc) => {
                    let trace = doc
                        .get("trace")
                        .ok_or_else(|| "trace_dump response lacks \"trace\"".to_string())?;
                    let events = doc.get("events").and_then(JsonValue::as_usize).unwrap_or(0);
                    match out {
                        Some(path) => {
                            std::fs::write(&path, trace.encode())
                                .map_err(|e| format!("cannot write {path}: {e}"))?;
                            eprintln!("tdp-client: wrote {events} trace events to {path}");
                        }
                        None => println!("{}", trace.encode()),
                    }
                    Ok(0)
                }
                Err(ClientError::Server(msg)) => {
                    eprintln!("tdp-client: server error: {msg}");
                    Ok(1)
                }
                Err(e) => Err(e.to_string()),
            }
        }
        "shutdown" => report(client.shutdown()),
        "eco" => run_eco(&mut client, args),
        other => Err(usage_err(format!("unknown command {other:?}"))),
    }
}

/// The `eco` subcommand: one connection-long interactive exchange.
fn run_eco(client: &mut Client, args: Vec<String>) -> Result<i32, String> {
    let mut case: Option<String> = None;
    let mut paths = 4usize;
    let mut script: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| usage_err(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--case" => case = Some(value("--case")?),
            "--paths" => {
                paths = value("--paths")?
                    .parse()
                    .map_err(|_| usage_err("--paths expects a non-negative integer"))?
            }
            "--script" => script = Some(value("--script")?),
            other => return Err(usage_err(format!("unknown eco flag {other:?}"))),
        }
    }
    let case = case.ok_or_else(|| usage_err("eco needs --case"))?;

    let print_doc = |doc: &JsonValue| println!("{}", doc.encode());
    // Server-side rejections print and count as failures; the exchange
    // continues (a bad delta batch must not strand the open session).
    let mut failures = 0usize;
    let mut step = |r: Result<JsonValue, ClientError>| -> Result<(), String> {
        match r {
            Ok(doc) => {
                print_doc(&doc);
                Ok(())
            }
            Err(ClientError::Server(msg)) => {
                eprintln!("tdp-client: server error: {msg}");
                failures += 1;
                Ok(())
            }
            Err(e) => Err(e.to_string()),
        }
    };

    match client.eco_open(&case) {
        Ok(doc) => print_doc(&doc),
        Err(ClientError::Server(msg)) => {
            eprintln!("tdp-client: eco_open failed: {msg}");
            return Ok(1);
        }
        Err(e) => return Err(e.to_string()),
    }
    if let Some(path) = script {
        let text = if path == "-" {
            let mut buf = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut buf)
                .map_err(|e| format!("stdin: {e}"))?;
            buf
        } else {
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?
        };
        for (i, line) in text
            .lines()
            .map(str::trim)
            .enumerate()
            .filter(|(_, l)| !l.is_empty())
        {
            let cmd = tdp_jsonio::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            if let Some(deltas) = cmd.get("apply") {
                step(client.eco_apply(&deltas.encode()))?;
            } else if let Some(q) = cmd.get("query") {
                let mode = q.get("mode").and_then(JsonValue::as_str).map(String::from);
                let k = q
                    .as_usize()
                    .or_else(|| q.get("paths").and_then(JsonValue::as_usize))
                    .unwrap_or(paths);
                step(client.eco_query(mode.as_deref(), k))?;
            } else if let Some(to) = cmd.get("revert") {
                step(client.eco_revert(to.as_usize()))?;
            } else {
                return Err(format!(
                    "line {}: unknown command (expected apply, query or revert)",
                    i + 1
                ));
            }
        }
    } else {
        step(client.eco_query(None, paths))?;
    }
    step(client.eco_close())?;
    Ok(if failures > 0 { 1 } else { 0 })
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(msg) => {
            eprintln!("tdp-client: {msg}");
            std::process::exit(2);
        }
    }
}

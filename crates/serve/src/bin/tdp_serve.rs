//! `tdp-serve` — the resident placement daemon.
//!
//! ```text
//! tdp-serve [--addr HOST:PORT] [--workers N] [--cache-capacity N]
//!           [--stride K] [--journal DIR] [--no-replay] [--retain N]
//!           [--trace-ring N] [--quiet]
//! ```
//!
//! Binds, prints the bound address (port 0 resolves to an ephemeral
//! port), and serves until a wire `shutdown` request arrives. With
//! `--journal DIR` every job is written through to a JSONL write-ahead
//! log and replayed on restart: finished jobs come back with their
//! reports and event logs, unfinished jobs re-run (or resolve as failed
//! under `--no-replay`). `--retain N` bounds in-memory state to the N
//! most recent finished jobs, re-serving older ones from the journal.
//! See the README's `tdp-serve` section for the protocol grammar and
//! the journal record schema.

use serve::{Server, ServerConfig};

const USAGE: &str = "usage: tdp-serve [options]
  --addr HOST:PORT     bind address (default: 127.0.0.1:7171; port 0 =
                       ephemeral, printed at startup)
  --workers N          job worker threads; 0 = one per hardware thread
                       (default: 2)
  --cache-capacity N   sessions kept hot in the LRU cache (default: 8)
  --stride K           default event stride for submits (default: 16)
  --journal DIR        append every submit/state/event/report to a JSONL
                       write-ahead log in DIR and replay it on startup
  --no-replay          on restart, mark journaled unfinished jobs failed
                       instead of re-running them
  --retain N           keep at most N finished jobs in memory; older ones
                       are re-served from the journal (requires --journal)
  --trace-ring N       keep the last N trace span events resident for the
                       trace_dump verb; 0 disables tracing
                       (default: 65536)
  --quiet              suppress the startup banner";

fn parse_args() -> Result<(ServerConfig, bool), String> {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7171".to_string(),
        ..ServerConfig::default()
    };
    let mut quiet = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers expects a non-negative integer".to_string())?
            }
            "--cache-capacity" => {
                cfg.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|_| "--cache-capacity expects a positive integer".to_string())?
            }
            "--stride" => {
                cfg.default_stride = value("--stride")?
                    .parse()
                    .map_err(|_| "--stride expects a positive integer".to_string())?
            }
            "--journal" => cfg.journal = Some(value("--journal")?.into()),
            "--no-replay" => cfg.replay = false,
            "--retain" => {
                cfg.retain = value("--retain")?
                    .parse()
                    .map_err(|_| "--retain expects a positive integer".to_string())?
            }
            "--trace-ring" => {
                cfg.trace_ring = value("--trace-ring")?
                    .parse()
                    .map_err(|_| "--trace-ring expects a non-negative integer".to_string())?
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if cfg.retain > 0 && cfg.journal.is_none() {
        return Err("--retain requires --journal (compacted jobs are re-served \
                    from the journal)"
            .to_string());
    }
    Ok((cfg, quiet))
}

fn main() {
    let (cfg, quiet) = match parse_args() {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("tdp-serve: {msg}");
            std::process::exit(2);
        }
    };
    let workers = cfg.workers;
    let cache = cfg.cache_capacity;
    let handle = match Server::start(cfg) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("tdp-serve: startup failed: {e}");
            std::process::exit(1);
        }
    };
    if !quiet {
        println!(
            "tdp-serve listening on {} ({} workers, cache {})",
            handle.addr(),
            if workers == 0 {
                "auto".to_string()
            } else {
                workers.to_string()
            },
            cache,
        );
    }
    handle.join();
    if !quiet {
        println!("tdp-serve: shut down cleanly");
    }
}

//! The wire protocol: newline-delimited JSON, one request or response
//! object per line.
//!
//! # Requests
//!
//! ```text
//! {"cmd":"submit","case":"sb18","objective":"efficient-tdp",
//!  "profile":"quick","overrides":{"seed":7},"stride":8}
//! {"cmd":"submit","params":{"name":"d","seed":3,"num_comb":400},...}
//! {"cmd":"status","job":0}
//! {"cmd":"wait","job":0}
//! {"cmd":"events","job":0,"from":0}
//! {"cmd":"cancel","job":0}
//! {"cmd":"metrics"}
//! {"cmd":"metrics_text"}
//! {"cmd":"shutdown"}
//! {"cmd":"eco_open","case":"cg1"}
//! {"cmd":"eco_apply","deltas":[{"op":"move","cells":[[3,10.5,20.0]]}]}
//! {"cmd":"eco_query","mode":"full","paths":4}
//! {"cmd":"eco_revert","to":0}
//! {"cmd":"eco_close"}
//! {"cmd":"trace_dump"}
//! ```
//!
//! The five `eco_*` verbs drive an interactive ECO session bound to the
//! connection: `eco_open` pins a cached design resident (one per
//! connection; the LRU cache will not evict it while pinned),
//! `eco_apply` applies a delta batch in the [`eco`] wire grammar and
//! re-analyzes incrementally, `eco_query` reads the answer back
//! (optionally forcing `"mode":"incremental"` or `"full"` re-analysis),
//! `eco_revert` rolls back to a checkpoint (or one batch without
//! `"to"`), and `eco_close` releases the pin and reports the session's
//! cumulative stats. Closing the connection auto-closes the session.
//!
//! A submit names its design either by `case` (a [`benchgen::full_suite`]
//! name) or inline by `params` (generator parameters; absent fields
//! default from [`CircuitParams::small`] seeded with the given
//! `name`/`seed`). `objective` is a single objective name as accepted by
//! [`batch::parse_objective`] (`all` is not valid on the wire — submit
//! one job per objective). `overrides` take the job-file `key=value`
//! vocabulary; values may be JSON numbers or strings.
//!
//! # Responses
//!
//! Every response carries `"ok"` and echoes `"cmd"`. Errors are
//! `{"ok":false,"error":"...",["line":L,"col":C]}` with the line/column
//! present for JSON syntax errors (as reported by [`tdp_jsonio::parse`]).
//!
//! The module also owns the **design key**: a canonical content hash of
//! the generator parameters ([`design_key`]) under which the daemon
//! caches sessions. A `case` reference and an inline `params` submission
//! that resolve to equal parameters hash identically and therefore share
//! one cached session.

use benchgen::CircuitParams;
use std::fmt;
use tdp_jsonio::{parse, push_escaped, push_num, JsonError, JsonValue};

/// How a submit names its design.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignRef {
    /// A named case from the widened 14-case suite.
    Case(String),
    /// Inline generator parameters.
    Inline(CircuitParams),
}

/// One decoded `submit` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// The design to place.
    pub design: DesignRef,
    /// Objective name (single; `all` is rejected).
    pub objective: String,
    /// Base schedule, `paper` or `quick`.
    pub profile: String,
    /// `key=value` overrides in job-file vocabulary.
    pub overrides: Vec<(String, String)>,
    /// Event stride override (`None` = server default).
    pub stride: Option<usize>,
}

impl SubmitRequest {
    /// A quick-profile request for a named case with no overrides.
    pub fn case(case: &str, objective: &str) -> Self {
        Self {
            design: DesignRef::Case(case.to_string()),
            objective: objective.to_string(),
            profile: "quick".to_string(),
            overrides: Vec::new(),
            stride: None,
        }
    }

    /// Renders the request as one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut s = String::from("{\"cmd\":\"submit\"");
        match &self.design {
            DesignRef::Case(name) => tdp_jsonio::field_str(&mut s, "case", name),
            DesignRef::Inline(params) => {
                tdp_jsonio::field_raw(&mut s, "params", &params_to_json(params).encode())
            }
        }
        tdp_jsonio::field_str(&mut s, "objective", &self.objective);
        tdp_jsonio::field_str(&mut s, "profile", &self.profile);
        if !self.overrides.is_empty() {
            let mut o = String::from("{");
            for (i, (k, v)) in self.overrides.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                push_escaped(&mut o, k);
                o.push(':');
                push_escaped(&mut o, v);
            }
            o.push('}');
            tdp_jsonio::field_raw(&mut s, "overrides", &o);
        }
        if let Some(stride) = self.stride {
            tdp_jsonio::field_num(&mut s, "stride", stride as f64);
        }
        s.push('}');
        s
    }
}

/// One decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue a job.
    Submit(Box<SubmitRequest>),
    /// Non-blocking job state poll.
    Status {
        /// Job id.
        job: usize,
    },
    /// Block until the job is terminal, then answer like `status`.
    Wait {
        /// Job id.
        job: usize,
    },
    /// Stream the job's progress events from index `from` until the job
    /// finishes.
    Events {
        /// Job id.
        job: usize,
        /// First event index to replay (0 = from the beginning).
        from: usize,
    },
    /// Request cancellation of a queued or running job.
    Cancel {
        /// Job id.
        job: usize,
    },
    /// Server counters.
    Metrics,
    /// Server counters in Prometheus text exposition format (the
    /// response carries the scrape body in its `"text"` field).
    MetricsText,
    /// Stop accepting work, cancel in-flight jobs, exit cleanly.
    Shutdown,
    /// Pin a design resident and open an ECO session on this connection.
    EcoOpen {
        /// The design to hold resident.
        design: DesignRef,
    },
    /// Apply a delta batch to the connection's ECO session.
    EcoApply {
        /// Raw delta-batch JSON (decoded against the open design by
        /// [`eco::delta_batch_from_json`] at dispatch time).
        deltas: JsonValue,
    },
    /// Read timing/congestion state back from the ECO session.
    EcoQuery {
        /// `Some(true)` forces a full re-analysis before the readout,
        /// `Some(false)` an incremental one; `None` reads the current
        /// state without re-analyzing.
        full: Option<bool>,
        /// Worst paths to include.
        paths: usize,
    },
    /// Roll the ECO session back to a checkpoint (or one batch).
    EcoRevert {
        /// Checkpoint depth (`None` = revert the latest batch).
        to: Option<usize>,
    },
    /// Close the ECO session and release the cache pin.
    EcoClose,
    /// Dump the daemon's resident span ring as a Chrome trace document
    /// (the response carries it in its `"trace"` field).
    TraceDump,
}

/// Why a request line was rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoError {
    /// Human-readable reason.
    pub msg: String,
    /// Line/column for JSON syntax errors.
    pub at: Option<(usize, usize)>,
}

impl ProtoError {
    /// A semantic (non-syntax) protocol error.
    pub fn new(msg: impl Into<String>) -> Self {
        Self {
            msg: msg.into(),
            at: None,
        }
    }

    /// Renders the error as one response line.
    pub fn to_response(&self) -> String {
        let mut s = String::from("{\"ok\":false");
        tdp_jsonio::field_str(&mut s, "error", &self.msg);
        if let Some((line, col)) = self.at {
            tdp_jsonio::field_num(&mut s, "line", line as f64);
            tdp_jsonio::field_num(&mut s, "col", col as f64);
        }
        s.push('}');
        s
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.at {
            Some((line, col)) => write!(f, "{} (at line {line} col {col})", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl From<JsonError> for ProtoError {
    fn from(e: JsonError) -> Self {
        Self {
            msg: format!("malformed JSON: {}", e.msg),
            at: Some((e.line, e.col)),
        }
    }
}

/// Decodes one request line.
///
/// # Errors
///
/// Returns [`ProtoError`] with position info for JSON syntax errors and
/// without for semantic ones (unknown command, missing fields, bad
/// types).
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let doc = parse(line)?;
    if doc.as_object().is_none() {
        return Err(ProtoError::new("request must be a JSON object"));
    }
    let cmd = doc
        .get("cmd")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ProtoError::new("missing string field \"cmd\""))?;
    match cmd {
        "submit" => Ok(Request::Submit(Box::new(parse_submit(&doc)?))),
        "status" => Ok(Request::Status { job: job_id(&doc)? }),
        "wait" => Ok(Request::Wait { job: job_id(&doc)? }),
        "events" => Ok(Request::Events {
            job: job_id(&doc)?,
            from: match doc.get("from") {
                None => 0,
                Some(v) => v
                    .as_usize()
                    .ok_or_else(|| ProtoError::new("\"from\" must be a non-negative integer"))?,
            },
        }),
        "cancel" => Ok(Request::Cancel { job: job_id(&doc)? }),
        "metrics" => Ok(Request::Metrics),
        "metrics_text" => Ok(Request::MetricsText),
        "shutdown" => Ok(Request::Shutdown),
        "eco_open" => Ok(Request::EcoOpen {
            design: parse_design(&doc, "eco_open")?,
        }),
        "eco_apply" => Ok(Request::EcoApply {
            deltas: doc
                .get("deltas")
                .cloned()
                .ok_or_else(|| ProtoError::new("eco_apply needs a \"deltas\" array"))?,
        }),
        "eco_query" => Ok(Request::EcoQuery {
            full: match doc.get("mode").map(JsonValue::as_str) {
                None => None,
                Some(Some("full")) => Some(true),
                Some(Some("incremental")) => Some(false),
                Some(other) => {
                    return Err(ProtoError::new(format!(
                        "\"mode\" must be \"incremental\" or \"full\" (got {:?})",
                        other.unwrap_or("<non-string>")
                    )))
                }
            },
            paths: match doc.get("paths") {
                None => 4,
                Some(v) => v
                    .as_usize()
                    .ok_or_else(|| ProtoError::new("\"paths\" must be a non-negative integer"))?,
            },
        }),
        "eco_revert" => Ok(Request::EcoRevert {
            to: match doc.get("to") {
                None => None,
                Some(v) => Some(
                    v.as_usize()
                        .ok_or_else(|| ProtoError::new("\"to\" must be a non-negative integer"))?,
                ),
            },
        }),
        "eco_close" => Ok(Request::EcoClose),
        "trace_dump" => Ok(Request::TraceDump),
        other => Err(ProtoError::new(format!(
            "unknown cmd {other:?} (expected submit, status, wait, events, cancel, metrics, \
             metrics_text, shutdown, eco_open, eco_apply, eco_query, eco_revert, eco_close \
             or trace_dump)"
        ))),
    }
}

fn job_id(doc: &JsonValue) -> Result<usize, ProtoError> {
    doc.get("job")
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| ProtoError::new("missing non-negative integer field \"job\""))
}

/// Decodes the shared `case`/`params` design naming used by `submit`
/// and `eco_open`.
fn parse_design(doc: &JsonValue, cmd: &str) -> Result<DesignRef, ProtoError> {
    match (doc.get("case"), doc.get("params")) {
        (Some(c), None) => Ok(DesignRef::Case(
            c.as_str()
                .ok_or_else(|| ProtoError::new("\"case\" must be a string"))?
                .to_string(),
        )),
        (None, Some(p)) => Ok(DesignRef::Inline(params_from_json(p)?)),
        (Some(_), Some(_)) => Err(ProtoError::new(
            "give either \"case\" or \"params\", not both",
        )),
        (None, None) => Err(ProtoError::new(format!(
            "{cmd} needs a design: \"case\" (catalog name) or \"params\" (inline)"
        ))),
    }
}

fn parse_submit(doc: &JsonValue) -> Result<SubmitRequest, ProtoError> {
    let design = parse_design(doc, "submit")?;
    let objective = doc
        .get("objective")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ProtoError::new("missing string field \"objective\""))?
        .to_string();
    let profile = match doc.get("profile") {
        None => "paper".to_string(),
        Some(p) => p
            .as_str()
            .ok_or_else(|| ProtoError::new("\"profile\" must be a string"))?
            .to_string(),
    };
    let mut overrides = Vec::new();
    if let Some(o) = doc.get("overrides") {
        let members = o
            .as_object()
            .ok_or_else(|| ProtoError::new("\"overrides\" must be an object"))?;
        for (key, value) in members {
            let text = match value {
                JsonValue::Str(s) => s.clone(),
                JsonValue::Num(n) => tdp_jsonio::format_num(*n),
                _ => {
                    return Err(ProtoError::new(format!(
                        "override {key:?} must be a string or number"
                    )))
                }
            };
            overrides.push((key.clone(), text));
        }
    }
    let stride = match doc.get("stride") {
        None => None,
        Some(v) => Some(
            v.as_usize()
                .filter(|&s| s > 0)
                .ok_or_else(|| ProtoError::new("\"stride\" must be a positive integer"))?,
        ),
    };
    Ok(SubmitRequest {
        design,
        objective,
        profile,
        overrides,
        stride,
    })
}

/// Encodes generator parameters as a JSON object (full field set — the
/// inverse of [`params_from_json`]).
pub fn params_to_json(p: &CircuitParams) -> JsonValue {
    JsonValue::Obj(vec![
        ("name".into(), JsonValue::Str(p.name.clone())),
        ("seed".into(), JsonValue::Num(p.seed as f64)),
        ("num_comb".into(), p.num_comb.into()),
        ("num_ff".into(), p.num_ff.into()),
        ("num_pi".into(), p.num_pi.into()),
        ("num_po".into(), p.num_po.into()),
        ("levels".into(), p.levels.into()),
        ("max_fanout".into(), p.max_fanout.into()),
        (
            "high_fanout_fraction".into(),
            JsonValue::Num(p.high_fanout_fraction),
        ),
        ("utilization".into(), JsonValue::Num(p.utilization)),
        ("num_macros".into(), p.num_macros.into()),
        ("clock_period".into(), JsonValue::Num(p.clock_period)),
        ("res_per_unit".into(), JsonValue::Num(p.res_per_unit)),
        ("cap_per_unit".into(), JsonValue::Num(p.cap_per_unit)),
    ])
}

/// Decodes inline generator parameters. `name` and `seed` are required;
/// every other field defaults from [`CircuitParams::small`] with that
/// name and seed, so small probes stay terse while full specifications
/// round-trip exactly.
///
/// # Errors
///
/// Returns [`ProtoError`] for missing/ill-typed fields and unknown keys
/// (unknown keys are rejected so typos cannot silently fall back to
/// defaults — a wrong design would cache under a wrong key).
pub fn params_from_json(v: &JsonValue) -> Result<CircuitParams, ProtoError> {
    let members = v
        .as_object()
        .ok_or_else(|| ProtoError::new("\"params\" must be an object"))?;
    let name = v
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ProtoError::new("params: missing string field \"name\""))?;
    let seed = v
        .get("seed")
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| ProtoError::new("params: missing non-negative integer \"seed\""))?;
    let mut p = CircuitParams::small(name, seed as u64);
    for (key, value) in members {
        let bad_usize =
            || ProtoError::new(format!("params: {key:?} must be a non-negative integer"));
        let bad_f64 = || ProtoError::new(format!("params: {key:?} must be a finite number"));
        let as_usize = || value.as_usize().ok_or_else(bad_usize);
        let as_f64 = || value.as_f64().filter(|f| f.is_finite()).ok_or_else(bad_f64);
        match key.as_str() {
            "name" | "seed" => {}
            "num_comb" => p.num_comb = as_usize()?,
            "num_ff" => p.num_ff = as_usize()?,
            "num_pi" => p.num_pi = as_usize()?,
            "num_po" => p.num_po = as_usize()?,
            "levels" => p.levels = as_usize()?,
            "max_fanout" => p.max_fanout = as_usize()?,
            "high_fanout_fraction" => p.high_fanout_fraction = as_f64()?,
            "utilization" => p.utilization = as_f64()?,
            "num_macros" => p.num_macros = as_usize()?,
            "clock_period" => p.clock_period = as_f64()?,
            "res_per_unit" => p.res_per_unit = as_f64()?,
            "cap_per_unit" => p.cap_per_unit = as_f64()?,
            other => return Err(ProtoError::new(format!("params: unknown field {other:?}"))),
        }
    }
    Ok(p)
}

/// The canonical content key of a design: FNV-1a over a canonical
/// rendering of the generator parameters (floats by IEEE-754 bits, so
/// the key is exact, not formatting-dependent). Equal parameters — by
/// name or inline — always produce equal keys; the session cache is
/// keyed by this.
pub fn design_key(p: &CircuitParams) -> u64 {
    let mut canon = String::with_capacity(256);
    canon.push_str("name=");
    canon.push_str(&p.name);
    let mut field = |key: &str, v: u64| {
        canon.push(';');
        canon.push_str(key);
        let _ = std::fmt::Write::write_fmt(&mut canon, format_args!("={v:x}"));
    };
    field("seed", p.seed);
    field("num_comb", p.num_comb as u64);
    field("num_ff", p.num_ff as u64);
    field("num_pi", p.num_pi as u64);
    field("num_po", p.num_po as u64);
    field("levels", p.levels as u64);
    field("max_fanout", p.max_fanout as u64);
    field("high_fanout_fraction", p.high_fanout_fraction.to_bits());
    field("utilization", p.utilization.to_bits());
    field("num_macros", p.num_macros as u64);
    field("clock_period", p.clock_period.to_bits());
    field("res_per_unit", p.res_per_unit.to_bits());
    field("cap_per_unit", p.cap_per_unit.to_bits());
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for b in canon.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Renders a `{"ok":true,"cmd":...}` response prefix; the caller appends
/// fields and the closing `}`.
pub fn ok_prefix(cmd: &str) -> String {
    let mut s = String::from("{\"ok\":true");
    tdp_jsonio::field_str(&mut s, "cmd", cmd);
    s
}

/// Renders one job progress event as a wire line.
pub fn event_line(kind: &str, job: usize, fields: impl FnOnce(&mut String)) -> String {
    let mut s = String::from("{\"event\":");
    push_escaped(&mut s, kind);
    s.push_str(",\"job\":");
    push_num(&mut s, job as f64);
    fields(&mut s);
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_through_encode_and_parse() {
        let mut req = SubmitRequest::case("sb18", "efficient-tdp");
        req.overrides.push(("seed".into(), "9".into()));
        req.stride = Some(4);
        let line = req.encode();
        let Request::Submit(back) = parse_request(&line).unwrap() else {
            panic!("expected submit");
        };
        assert_eq!(*back, req);
    }

    #[test]
    fn inline_params_round_trip_and_share_keys_with_cases() {
        let case = benchgen::case_by_name("mx1").unwrap();
        let req = SubmitRequest {
            design: DesignRef::Inline(case.params.clone()),
            objective: "dreamplace4".into(),
            profile: "paper".into(),
            overrides: vec![],
            stride: None,
        };
        let Request::Submit(back) = parse_request(&req.encode()).unwrap() else {
            panic!("expected submit");
        };
        let DesignRef::Inline(params) = &back.design else {
            panic!("expected inline design");
        };
        assert_eq!(params, &case.params);
        // The content key is reference-independent.
        assert_eq!(design_key(params), design_key(&case.params));
        // And sensitive to any parameter change.
        let mut other = case.params.clone();
        other.clock_period += 1.0;
        assert_ne!(design_key(&other), design_key(&case.params));
    }

    #[test]
    fn inline_params_default_from_small_and_reject_unknown_keys() {
        let v = parse("{\"name\":\"d\",\"seed\":3,\"num_comb\":400}").unwrap();
        let p = params_from_json(&v).unwrap();
        assert_eq!(p.num_comb, 400);
        assert_eq!(p.num_ff, CircuitParams::small("d", 3).num_ff);

        let bad = parse("{\"name\":\"d\",\"seed\":3,\"num_cmb\":400}").unwrap();
        let err = params_from_json(&bad).unwrap_err();
        assert!(err.msg.contains("num_cmb"), "{err}");
    }

    #[test]
    fn overrides_accept_numbers_and_strings() {
        let line = "{\"cmd\":\"submit\",\"case\":\"sb18\",\"objective\":\"ours\",\
                    \"overrides\":{\"seed\":7,\"beta\":\"1e-3\"}}";
        let Request::Submit(req) = parse_request(line).unwrap() else {
            panic!("expected submit");
        };
        assert_eq!(
            req.overrides,
            vec![
                ("seed".to_string(), "7".to_string()),
                ("beta".to_string(), "1e-3".to_string()),
            ]
        );
    }

    #[test]
    fn syntax_errors_carry_positions_and_semantic_errors_do_not() {
        let err = parse_request("{\"cmd\": nope}").unwrap_err();
        assert_eq!(err.at, Some((1, 9)), "{err}");
        assert!(err.to_response().contains("\"line\":1"));

        let err = parse_request("{\"cmd\":\"warp\"}").unwrap_err();
        assert_eq!(err.at, None);
        assert!(err.msg.contains("warp"), "{err}");

        let err = parse_request("{\"cmd\":\"status\"}").unwrap_err();
        assert!(err.msg.contains("job"), "{err}");

        let err = parse_request("{\"cmd\":\"submit\",\"objective\":\"ours\"}").unwrap_err();
        assert!(err.msg.contains("design"), "{err}");
    }

    #[test]
    fn eco_requests_parse_with_defaults_and_reject_bad_modes() {
        assert_eq!(
            parse_request("{\"cmd\":\"eco_open\",\"case\":\"cg1\"}").unwrap(),
            Request::EcoOpen {
                design: DesignRef::Case("cg1".into())
            }
        );
        let err = parse_request("{\"cmd\":\"eco_open\"}").unwrap_err();
        assert!(err.msg.contains("eco_open needs a design"), "{err}");

        let Request::EcoApply { deltas } = parse_request(
            "{\"cmd\":\"eco_apply\",\"deltas\":[{\"op\":\"retarget_clock\",\"period\":900.0}]}",
        )
        .unwrap() else {
            panic!("expected eco_apply");
        };
        assert_eq!(deltas.as_array().map(<[JsonValue]>::len), Some(1));
        let err = parse_request("{\"cmd\":\"eco_apply\"}").unwrap_err();
        assert!(err.msg.contains("deltas"), "{err}");

        assert_eq!(
            parse_request("{\"cmd\":\"eco_query\"}").unwrap(),
            Request::EcoQuery {
                full: None,
                paths: 4
            }
        );
        assert_eq!(
            parse_request("{\"cmd\":\"eco_query\",\"mode\":\"full\",\"paths\":0}").unwrap(),
            Request::EcoQuery {
                full: Some(true),
                paths: 0
            }
        );
        let err = parse_request("{\"cmd\":\"eco_query\",\"mode\":\"warp\"}").unwrap_err();
        assert!(err.msg.contains("incremental"), "{err}");

        assert_eq!(
            parse_request("{\"cmd\":\"eco_revert\"}").unwrap(),
            Request::EcoRevert { to: None }
        );
        assert_eq!(
            parse_request("{\"cmd\":\"eco_revert\",\"to\":2}").unwrap(),
            Request::EcoRevert { to: Some(2) }
        );
        assert_eq!(
            parse_request("{\"cmd\":\"eco_close\"}").unwrap(),
            Request::EcoClose
        );
    }

    #[test]
    fn requests_without_payload_parse() {
        assert_eq!(
            parse_request("{\"cmd\":\"metrics\"}").unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request("{\"cmd\":\"metrics_text\"}").unwrap(),
            Request::MetricsText
        );
        assert_eq!(
            parse_request("{\"cmd\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            parse_request("{\"cmd\":\"events\",\"job\":2}").unwrap(),
            Request::Events { job: 2, from: 0 }
        );
        assert_eq!(
            parse_request("{\"cmd\":\"trace_dump\"}").unwrap(),
            Request::TraceDump
        );
    }
}

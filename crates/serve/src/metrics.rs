//! Server-lifetime counters, exposed by the `metrics` request.
//!
//! All counters are relaxed atomics: they are observability, not
//! synchronization — the numbers a deterministic test asserts on
//! (cache hits/misses) are updated on the single submit path, in submit
//! order, so they *are* exact for sequential clients.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Upper bounds (seconds) of the per-verb request-latency histogram,
/// log-spaced two-per-decade (1, 5) from 100µs to 10s, each with its
/// canonical Prometheus `le` label so rendering is exact and stable.
/// A final implicit `+Inf` bucket catches everything slower.
pub const LATENCY_LE: [(f64, &str); 11] = [
    (0.0001, "0.0001"),
    (0.0005, "0.0005"),
    (0.001, "0.001"),
    (0.005, "0.005"),
    (0.01, "0.01"),
    (0.05, "0.05"),
    (0.1, "0.1"),
    (0.5, "0.5"),
    (1.0, "1"),
    (5.0, "5"),
    (10.0, "10"),
];

/// Every wire verb, in protocol order — the label set of the
/// `request_seconds` histogram. Requests that fail to parse have no
/// verb and are not observed (they still count in `requests`).
pub const VERBS: [&str; 14] = [
    "submit",
    "status",
    "wait",
    "events",
    "cancel",
    "metrics",
    "metrics_text",
    "shutdown",
    "eco_open",
    "eco_apply",
    "eco_query",
    "eco_revert",
    "eco_close",
    "trace_dump",
];

/// One verb's latency histogram: per-bucket (non-cumulative) relaxed
/// counters plus a running sum in nanoseconds. Cumulative `le` counts
/// are computed at render time.
#[derive(Debug)]
pub struct LatencyHisto {
    buckets: [AtomicU64; LATENCY_LE.len() + 1],
    sum_ns: AtomicU64,
}

impl LatencyHisto {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, seconds: f64) {
        let idx = LATENCY_LE
            .iter()
            .position(|&(bound, _)| seconds <= bound)
            .unwrap_or(LATENCY_LE.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_ns
            .fetch_add((seconds * 1e9).round() as u64, Ordering::Relaxed);
    }

    /// Cumulative bucket counts (the last entry is `+Inf` = total
    /// count) and the sum in seconds.
    fn snapshot(&self) -> ([u64; LATENCY_LE.len() + 1], f64) {
        let mut cum = [0u64; LATENCY_LE.len() + 1];
        let mut total = 0u64;
        for (slot, bucket) in cum.iter_mut().zip(&self.buckets) {
            total += bucket.load(Ordering::Relaxed);
            *slot = total;
        }
        (cum, self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9)
    }
}

/// Per-verb request latency histograms, indexed by [`VERBS`].
#[derive(Debug)]
pub struct RequestLatencies {
    verbs: [LatencyHisto; VERBS.len()],
}

impl RequestLatencies {
    fn new() -> Self {
        Self {
            verbs: std::array::from_fn(|_| LatencyHisto::new()),
        }
    }

    /// Records one request's wall-clock under its verb. Unknown verbs
    /// are ignored (the verb set is closed; this cannot happen from the
    /// dispatch path).
    pub fn observe(&self, verb: &str, seconds: f64) {
        if let Some(i) = VERBS.iter().position(|&v| v == verb) {
            self.verbs[i].observe(seconds);
        }
    }
}

/// Counters for one server instance.
#[derive(Debug)]
pub struct ServeMetrics {
    started: Instant,
    /// Requests parsed (including ones that errored semantically).
    pub requests: AtomicU64,
    /// Submits accepted (a job was enqueued).
    pub submits: AtomicU64,
    /// Jobs that finished `done`.
    pub jobs_done: AtomicU64,
    /// Jobs that finished `canceled`.
    pub jobs_canceled: AtomicU64,
    /// Jobs that finished `failed`.
    pub jobs_failed: AtomicU64,
    /// Submits that found their design's session already cached.
    pub cache_hits: AtomicU64,
    /// Submits that allocated a new cache slot.
    pub cache_misses: AtomicU64,
    /// Sessions evicted to respect the cache capacity.
    pub cache_evictions: AtomicU64,
    /// `events` streams served.
    pub event_streams: AtomicU64,
    /// ECO sessions opened (`eco_open` accepted).
    pub eco_opens: AtomicU64,
    /// Delta batches applied (`eco_apply` accepted).
    pub eco_applies: AtomicU64,
    /// ECO queries answered.
    pub eco_queries: AtomicU64,
    /// ECO reverts performed.
    pub eco_reverts: AtomicU64,
    /// Cells moved across all closed ECO sessions (folded from
    /// [`tdp_core::EcoStats`] when a session closes).
    pub eco_cells_moved: AtomicU64,
    /// Dirty nets re-analyzed across all closed ECO sessions.
    pub eco_dirty_nets: AtomicU64,
    /// Nanoseconds spent in incremental ECO analysis (closed sessions).
    pub eco_incremental_ns: AtomicU64,
    /// Nanoseconds spent in full ECO analysis (closed sessions).
    pub eco_full_ns: AtomicU64,
    /// Records appended to the job journal by this instance.
    pub journal_appends: AtomicU64,
    /// Records replayed from the journal at startup.
    pub journal_replays: AtomicU64,
    /// Jobs restored from the journal at startup (finished jobs
    /// re-materialized plus unfinished jobs re-enqueued).
    pub jobs_recovered: AtomicU64,
    /// Finished jobs whose in-memory event log was compacted away under
    /// the `--retain` cap (their state lives on in the journal).
    pub jobs_compacted: AtomicU64,
    /// Connection-handler threads reaped (joined) after their
    /// connections closed.
    pub conns_reaped: AtomicU64,
    /// Per-verb request latency histograms (wall-clock across parse +
    /// dispatch, observed by the connection handler).
    pub latency: RequestLatencies,
    /// `sta::graph_build_count()` at server start — the baseline for
    /// the `graph_builds` metric (builds attributable to this server).
    pub graph_builds_at_start: u64,
    /// `sta::rc_skeleton_build_count()` at server start.
    pub rc_builds_at_start: u64,
    /// `sta::rc_tree_build_count()` at server start. The delta stays 0
    /// on a healthy server: analyzers refresh through the slab-backed
    /// forest, never by constructing per-net trees.
    pub rc_tree_builds_at_start: u64,
    /// `sta::rc_refresh_count()` at server start.
    pub rc_refreshes_at_start: u64,
    /// `sta::rc_nets_refreshed_count()` at server start.
    pub rc_nets_refreshed_at_start: u64,
    /// `sta::rc_scratch_reuse_count()` at server start.
    pub rc_scratch_reuses_at_start: u64,
}

impl ServeMetrics {
    /// Fresh counters; records the process-wide STA build baselines.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            submits: AtomicU64::new(0),
            jobs_done: AtomicU64::new(0),
            jobs_canceled: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
            event_streams: AtomicU64::new(0),
            eco_opens: AtomicU64::new(0),
            eco_applies: AtomicU64::new(0),
            eco_queries: AtomicU64::new(0),
            eco_reverts: AtomicU64::new(0),
            eco_cells_moved: AtomicU64::new(0),
            eco_dirty_nets: AtomicU64::new(0),
            eco_incremental_ns: AtomicU64::new(0),
            eco_full_ns: AtomicU64::new(0),
            journal_appends: AtomicU64::new(0),
            journal_replays: AtomicU64::new(0),
            jobs_recovered: AtomicU64::new(0),
            jobs_compacted: AtomicU64::new(0),
            conns_reaped: AtomicU64::new(0),
            latency: RequestLatencies::new(),
            graph_builds_at_start: sta::graph_build_count() as u64,
            rc_builds_at_start: sta::rc_skeleton_build_count() as u64,
            rc_tree_builds_at_start: sta::rc_tree_build_count() as u64,
            rc_refreshes_at_start: sta::rc_refresh_count(),
            rc_nets_refreshed_at_start: sta::rc_nets_refreshed_count(),
            rc_scratch_reuses_at_start: sta::rc_scratch_reuse_count(),
        }
    }

    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds a closing ECO session's cumulative stats into the
    /// server-lifetime accumulators. `queries` is deliberately not
    /// folded: `eco_queries` counts answered requests live, at dispatch.
    pub fn fold_eco(&self, stats: &tdp_core::EcoStats) {
        self.eco_cells_moved
            .fetch_add(stats.cells_moved, Ordering::Relaxed);
        self.eco_dirty_nets
            .fetch_add(stats.dirty_nets, Ordering::Relaxed);
        self.eco_incremental_ns
            .fetch_add(stats.incremental_ns, Ordering::Relaxed);
        self.eco_full_ns.fetch_add(stats.full_ns, Ordering::Relaxed);
    }

    /// Renders the counters (plus the caller-supplied [`Gauges`]
    /// snapshot) as the fields of a `metrics` response. Documented
    /// field-by-field in the README's `tdp-serve` section.
    pub fn render(&self, out: &mut String, gauges: &Gauges) {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed) as f64;
        tdp_jsonio::field_num(out, "uptime_s", self.started.elapsed().as_secs_f64());
        tdp_jsonio::field_num(out, "workers", gauges.workers as f64);
        tdp_jsonio::field_num(out, "requests", get(&self.requests));
        tdp_jsonio::field_num(out, "submits", get(&self.submits));
        tdp_jsonio::field_num(out, "jobs", gauges.jobs_total as f64);
        tdp_jsonio::field_num(out, "queued", gauges.jobs_queued as f64);
        tdp_jsonio::field_num(out, "running", gauges.jobs_running as f64);
        tdp_jsonio::field_num(out, "done", get(&self.jobs_done));
        tdp_jsonio::field_num(out, "canceled", get(&self.jobs_canceled));
        tdp_jsonio::field_num(out, "failed", get(&self.jobs_failed));
        tdp_jsonio::field_num(out, "cache_entries", gauges.cache_entries as f64);
        tdp_jsonio::field_num(out, "cache_capacity", gauges.cache_capacity as f64);
        tdp_jsonio::field_num(out, "cache_hits", get(&self.cache_hits));
        tdp_jsonio::field_num(out, "cache_misses", get(&self.cache_misses));
        tdp_jsonio::field_num(out, "cache_evictions", get(&self.cache_evictions));
        tdp_jsonio::field_num(out, "event_streams", get(&self.event_streams));
        tdp_jsonio::field_num(
            out,
            "graph_builds",
            (sta::graph_build_count() as u64).saturating_sub(self.graph_builds_at_start) as f64,
        );
        tdp_jsonio::field_num(
            out,
            "rc_builds",
            (sta::rc_skeleton_build_count() as u64).saturating_sub(self.rc_builds_at_start) as f64,
        );
        tdp_jsonio::field_num(
            out,
            "rc_tree_builds",
            (sta::rc_tree_build_count() as u64).saturating_sub(self.rc_tree_builds_at_start) as f64,
        );
        tdp_jsonio::field_num(
            out,
            "rc_refreshes",
            sta::rc_refresh_count().saturating_sub(self.rc_refreshes_at_start) as f64,
        );
        tdp_jsonio::field_num(
            out,
            "rc_nets_refreshed",
            sta::rc_nets_refreshed_count().saturating_sub(self.rc_nets_refreshed_at_start) as f64,
        );
        tdp_jsonio::field_num(
            out,
            "rc_scratch_reuses",
            sta::rc_scratch_reuse_count().saturating_sub(self.rc_scratch_reuses_at_start) as f64,
        );
        tdp_jsonio::field_num(out, "eco_opens", get(&self.eco_opens));
        tdp_jsonio::field_num(out, "eco_applies", get(&self.eco_applies));
        tdp_jsonio::field_num(out, "eco_queries", get(&self.eco_queries));
        tdp_jsonio::field_num(out, "eco_reverts", get(&self.eco_reverts));
        tdp_jsonio::field_num(out, "eco_cells_moved", get(&self.eco_cells_moved));
        tdp_jsonio::field_num(out, "eco_dirty_nets", get(&self.eco_dirty_nets));
        tdp_jsonio::field_num(out, "eco_incremental_ns", get(&self.eco_incremental_ns));
        tdp_jsonio::field_num(out, "eco_full_ns", get(&self.eco_full_ns));
        tdp_jsonio::field_num(out, "events_resident", gauges.events_resident as f64);
        tdp_jsonio::field_num(out, "journal_appends", get(&self.journal_appends));
        tdp_jsonio::field_num(out, "journal_replays", get(&self.journal_replays));
        tdp_jsonio::field_num(out, "jobs_recovered", get(&self.jobs_recovered));
        tdp_jsonio::field_num(out, "jobs_compacted", get(&self.jobs_compacted));
        tdp_jsonio::field_num(out, "conns_reaped", get(&self.conns_reaped));
        tdp_jsonio::field_raw(out, "request_seconds", &self.latency_json());
    }

    /// The `request_seconds` histogram as a JSON object: the shared
    /// `le` bounds once, then one `{count,sum_s,buckets}` entry per
    /// verb that has been observed (`buckets` are cumulative counts
    /// aligned with `le` plus a final `+Inf` total).
    fn latency_json(&self) -> String {
        let mut s = String::from("{\"le\":[");
        for (i, &(bound, _)) in LATENCY_LE.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&tdp_jsonio::format_num(bound));
        }
        s.push_str("],\"verbs\":{");
        let mut first = true;
        for (verb, histo) in VERBS.iter().zip(&self.latency.verbs) {
            let (cum, sum_s) = histo.snapshot();
            let count = cum[cum.len() - 1];
            if count == 0 {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            tdp_jsonio::push_escaped(&mut s, verb);
            s.push_str(":{\"count\":");
            s.push_str(&tdp_jsonio::format_num(count as f64));
            tdp_jsonio::field_num(&mut s, "sum_s", sum_s);
            s.push_str(",\"buckets\":[");
            for (i, c) in cum.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&tdp_jsonio::format_num(*c as f64));
            }
            s.push_str("]}");
        }
        s.push_str("}}");
        s
    }

    /// Renders the same counters and gauges in Prometheus text
    /// exposition format (the `metrics_text` verb): one `# TYPE` line
    /// per sample, names prefixed `tdp_serve_`, counters suffixed
    /// `_total`.
    pub fn render_prometheus(&self, gauges: &Gauges) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        let mut sample = |name: &str, kind: &str, value: f64| {
            let _ = writeln!(out, "# TYPE tdp_serve_{name} {kind}");
            let _ = writeln!(out, "tdp_serve_{name} {}", tdp_jsonio::format_num(value));
        };
        let mut gauge = |name: &str, value: f64| sample(name, "gauge", value);
        gauge("uptime_seconds", self.started.elapsed().as_secs_f64());
        gauge("workers", gauges.workers as f64);
        gauge("jobs", gauges.jobs_total as f64);
        gauge("jobs_queued", gauges.jobs_queued as f64);
        gauge("jobs_running", gauges.jobs_running as f64);
        gauge("cache_entries", gauges.cache_entries as f64);
        gauge("cache_capacity", gauges.cache_capacity as f64);
        gauge("events_resident", gauges.events_resident as f64);
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed) as f64;
        let mut counter =
            |name: &str, value: f64| sample(&format!("{name}_total"), "counter", value);
        counter("requests", get(&self.requests));
        counter("submits", get(&self.submits));
        counter("jobs_done", get(&self.jobs_done));
        counter("jobs_canceled", get(&self.jobs_canceled));
        counter("jobs_failed", get(&self.jobs_failed));
        counter("cache_hits", get(&self.cache_hits));
        counter("cache_misses", get(&self.cache_misses));
        counter("cache_evictions", get(&self.cache_evictions));
        counter("event_streams", get(&self.event_streams));
        counter(
            "graph_builds",
            (sta::graph_build_count() as u64).saturating_sub(self.graph_builds_at_start) as f64,
        );
        counter(
            "rc_builds",
            (sta::rc_skeleton_build_count() as u64).saturating_sub(self.rc_builds_at_start) as f64,
        );
        counter(
            "rc_tree_builds",
            (sta::rc_tree_build_count() as u64).saturating_sub(self.rc_tree_builds_at_start) as f64,
        );
        counter(
            "rc_refreshes",
            sta::rc_refresh_count().saturating_sub(self.rc_refreshes_at_start) as f64,
        );
        counter(
            "rc_nets_refreshed",
            sta::rc_nets_refreshed_count().saturating_sub(self.rc_nets_refreshed_at_start) as f64,
        );
        counter(
            "rc_scratch_reuses",
            sta::rc_scratch_reuse_count().saturating_sub(self.rc_scratch_reuses_at_start) as f64,
        );
        counter("eco_opens", get(&self.eco_opens));
        counter("eco_applies", get(&self.eco_applies));
        counter("eco_queries", get(&self.eco_queries));
        counter("eco_reverts", get(&self.eco_reverts));
        counter("eco_cells_moved", get(&self.eco_cells_moved));
        counter("eco_dirty_nets", get(&self.eco_dirty_nets));
        counter("eco_incremental_ns", get(&self.eco_incremental_ns));
        counter("eco_full_ns", get(&self.eco_full_ns));
        counter("journal_appends", get(&self.journal_appends));
        counter("journal_replays", get(&self.journal_replays));
        counter("jobs_recovered", get(&self.jobs_recovered));
        counter("jobs_compacted", get(&self.jobs_compacted));
        counter("conns_reaped", get(&self.conns_reaped));
        let _ = writeln!(out, "# TYPE tdp_serve_request_seconds histogram");
        for (verb, histo) in VERBS.iter().zip(&self.latency.verbs) {
            let (cum, sum_s) = histo.snapshot();
            let count = cum[cum.len() - 1];
            for (i, &(_, le)) in LATENCY_LE.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "tdp_serve_request_seconds_bucket{{verb=\"{verb}\",le=\"{le}\"}} {}",
                    cum[i]
                );
            }
            let _ = writeln!(
                out,
                "tdp_serve_request_seconds_bucket{{verb=\"{verb}\",le=\"+Inf\"}} {count}"
            );
            let _ = writeln!(
                out,
                "tdp_serve_request_seconds_sum{{verb=\"{verb}\"}} {}",
                tdp_jsonio::format_num(sum_s)
            );
            let _ = writeln!(
                out,
                "tdp_serve_request_seconds_count{{verb=\"{verb}\"}} {count}"
            );
        }
        out
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Point-in-time state the server snapshots for one `metrics` response —
/// values that live in the scheduler, not in the counters.
#[derive(Debug, Clone, Copy)]
pub struct Gauges {
    /// Resolved worker-thread count.
    pub workers: usize,
    /// Jobs ever submitted.
    pub jobs_total: usize,
    /// Jobs waiting for a worker.
    pub jobs_queued: usize,
    /// Jobs executing right now.
    pub jobs_running: usize,
    /// Designs currently cached.
    pub cache_entries: usize,
    /// Cache capacity.
    pub cache_capacity: usize,
    /// Event-log lines resident in memory across live jobs — the
    /// quantity `--retain` compaction bounds.
    pub events_resident: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_histograms_render_in_both_formats() {
        let m = ServeMetrics::new();
        m.latency.observe("submit", 0.003);
        m.latency.observe("submit", 0.2);
        m.latency.observe("wait", 42.0); // beyond the last bound: +Inf only
        m.latency.observe("bogus", 1.0); // unknown verb: ignored
        let gauges = Gauges {
            workers: 2,
            jobs_total: 0,
            jobs_queued: 0,
            jobs_running: 0,
            cache_entries: 0,
            cache_capacity: 4,
            events_resident: 0,
        };

        let mut json = String::from("{\"ok\":true");
        m.render(&mut json, &gauges);
        json.push('}');
        let doc = tdp_jsonio::parse(&json).unwrap();
        let verbs = doc
            .get("request_seconds")
            .and_then(|h| h.get("verbs"))
            .expect("request_seconds.verbs");
        let submit = verbs.get("submit").expect("submit entry");
        assert_eq!(submit.get("count").and_then(|v| v.as_f64()), Some(2.0));
        let buckets = submit.get("buckets").and_then(|b| b.as_array()).unwrap();
        assert_eq!(buckets.len(), LATENCY_LE.len() + 1);
        // Cumulative counts: 0.003 lands at le=0.005, 0.2 at le=0.5.
        assert_eq!(buckets[2].as_f64(), Some(0.0));
        assert_eq!(buckets[3].as_f64(), Some(1.0));
        assert_eq!(buckets[7].as_f64(), Some(2.0));
        // Unobserved verbs are omitted from the JSON form.
        assert!(verbs.get("status").is_none());

        let text = m.render_prometheus(&gauges);
        assert!(text.contains("# TYPE tdp_serve_request_seconds histogram"));
        assert!(text.contains("tdp_serve_request_seconds_bucket{verb=\"submit\",le=\"0.005\"} 1"));
        assert!(text.contains("tdp_serve_request_seconds_bucket{verb=\"submit\",le=\"+Inf\"} 2"));
        assert!(text.contains("tdp_serve_request_seconds_sum{verb=\"submit\"}"));
        // The 42s wait overflows every finite bound but still counts.
        assert!(text.contains("tdp_serve_request_seconds_bucket{verb=\"wait\",le=\"10\"} 0"));
        assert!(text.contains("tdp_serve_request_seconds_count{verb=\"wait\"} 1"));
        // Unobserved verbs still emit a full (all-zero) series.
        assert!(text.contains("tdp_serve_request_seconds_count{verb=\"trace_dump\"} 0"));
    }
}

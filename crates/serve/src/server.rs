//! The resident placement service.
//!
//! One [`Server`] owns a TCP listener, a worker pool fed by a
//! [`parx::TaskQueue`], and the [`SessionCache`]. Connections are
//! line-oriented: each accepted socket gets a handler thread that reads
//! one JSON request per line and writes one (or, for `events`, many)
//! JSON response lines — see [`crate::protocol`] for the grammar.
//!
//! # Execution path
//!
//! A `submit` resolves the design, builds the job's [`FlowSpec`](tdp_core::FlowSpec) through
//! exactly the same [`batch::make_jobs_for`] path a local run uses,
//! reserves a session slot in the cache (hit/miss counted in submit
//! order), appends a job-state record and enqueues its id. A worker pops the
//! id, checks the session out of the slot (building it on first use) and
//! runs [`batch::execute_job`] — the same function the batch runner
//! executes — with a [`SinkObserver`](batch::SinkObserver) streaming progress into the job's
//! event log. Results are therefore **bitwise identical** to a local
//! `Session::run` of the same spec: the daemon adds scheduling and
//! caching around the flow, never arithmetic inside it (the differential
//! test at the workspace root asserts this, placement fingerprint
//! included).
//!
//! # Durability
//!
//! With [`ServerConfig::journal`] set, every submit, state transition,
//! event line and final report is appended to a JSONL write-ahead log
//! (see [`crate::journal`]). On startup the journal is replayed:
//! finished jobs come back with their reports and event logs, unfinished
//! jobs are re-enqueued (their deterministic re-run regenerates the
//! identical event stream and report) or — under
//! [`ServerConfig::replay`]` = false` — resolved as failed-by-restart.
//! [`ServerConfig::retain`] bounds in-memory growth: beyond the cap, the
//! oldest finished jobs' event logs and reports are compacted out of
//! memory and re-served from the journal, byte-identically.
//!
//! # Shutdown discipline
//!
//! `shutdown` (request or [`ServerHandle::shutdown`]) closes the queue,
//! raises every unfinished job's cancel flag, unblocks the acceptor and
//! shuts every connection socket. Workers drain the backlog (fast-failing
//! jobs that never started), every job reaches a terminal state (so
//! `wait`ers and `events` streams wake), and [`ServerHandle::join`]
//! returns only after the acceptor, every handler and every worker have
//! been joined — no leaked threads, asserted by the serve tests. Handler
//! threads are also reaped *during* operation, as their connections
//! close, so a resident daemon does not accumulate one dead
//! [`JoinHandle`] per served connection.

use crate::cache::{SessionCache, SessionSlot};
use crate::journal::{self, Journal, Record, SubmitRecord};
use crate::metrics::ServeMetrics;
use crate::protocol::{
    design_key, event_line, ok_prefix, parse_request, DesignRef, ProtoError, Request, SubmitRequest,
};
use batch::{
    execute_job, job_json, make_jobs_for, parse_objective, BatchEvent, BatchJob, BatchSink,
    CancelSet, JobReport, JobStatus, Profile,
};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use tdp_core::FlowPhase;

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (the bound address
    /// is on [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads executing jobs (`0` = one per hardware thread).
    pub workers: usize,
    /// Sessions kept hot in the LRU cache.
    pub cache_capacity: usize,
    /// Default event stride for submits that do not set one.
    pub default_stride: usize,
    /// Journal directory (`None` = in-memory only, no durability).
    pub journal: Option<PathBuf>,
    /// On startup, re-enqueue journaled jobs that never finished
    /// (`true`, the default) instead of resolving them failed-by-restart
    /// (`false`, the `--no-replay` policy).
    pub replay: bool,
    /// Retention cap on finished jobs held in memory (`0` = unlimited).
    /// Beyond the cap the oldest finished jobs are compacted: their
    /// event logs and reports are dropped from memory and re-served
    /// from the journal. Requires [`ServerConfig::journal`].
    pub retain: usize,
    /// Event capacity of the resident span ring served by `trace_dump`
    /// (`0` = tracing off). When set, [`Server::start`] enables the
    /// process-wide recorder; spans from requests and jobs are folded
    /// into a bounded ring that evicts whole lane chunks oldest-first.
    /// Tracing never perturbs results — the flow's arithmetic is
    /// identical with it on or off (asserted by the trace differential
    /// test at the workspace root).
    pub trace_ring: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            cache_capacity: 8,
            default_stride: 16,
            journal: None,
            replay: true,
            retain: 0,
            trace_ring: 65_536,
        }
    }
}

/// Terminal-state-aware job phase (the report is boxed so the common
/// non-terminal states stay pointer-sized).
#[derive(Debug)]
enum JobPhase {
    Queued,
    Running,
    Finished(Box<JobReport>),
}

impl JobPhase {
    fn label(&self) -> &str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Finished(r) => r.status.label(),
        }
    }
}

/// Terminal-state label with a `'static` lifetime — a compaction
/// tombstone cannot borrow from the report it replaces.
fn static_label(status: &JobStatus) -> &'static str {
    match status {
        JobStatus::Done => "done",
        JobStatus::Canceled => "canceled",
        JobStatus::Failed(_) => "failed",
    }
}

/// Append-only per-job event log with blocking readers.
#[derive(Debug, Default)]
struct EventLog {
    state: Mutex<EventLogState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct EventLogState {
    lines: Vec<String>,
    closed: bool,
}

impl EventLog {
    /// A closed log pre-populated with journaled lines (for jobs
    /// restored finished — their stream is complete by construction).
    fn restored(lines: Vec<String>) -> Self {
        Self {
            state: Mutex::new(EventLogState {
                lines,
                closed: true,
            }),
            cv: Condvar::new(),
        }
    }

    /// Appends a line, returning its index; `None` when the log is
    /// already closed (the line is dropped).
    fn push(&self, line: &str) -> Option<usize> {
        let mut s = self.state.lock().expect("event log lock");
        let seq = if s.closed {
            None
        } else {
            s.lines.push(line.to_string());
            Some(s.lines.len() - 1)
        };
        drop(s);
        self.cv.notify_all();
        seq
    }

    fn close(&self) {
        self.state.lock().expect("event log lock").closed = true;
        self.cv.notify_all();
    }

    /// Lines currently resident (the quantity `--retain` bounds).
    fn len(&self) -> usize {
        self.state.lock().expect("event log lock").lines.len()
    }

    /// Blocks until lines beyond `index` exist (returning them) or the
    /// log closes with none left (returning an empty vec).
    fn wait_from(&self, index: usize) -> (Vec<String>, bool) {
        let mut s = self.state.lock().expect("event log lock");
        loop {
            if s.lines.len() > index {
                return (s.lines[index..].to_vec(), s.closed);
            }
            if s.closed {
                return (Vec::new(), true);
            }
            s = self.cv.wait(s).expect("event log lock");
        }
    }
}

/// One submitted job and everything needed to run, watch and cancel it.
struct JobState {
    id: usize,
    job: BatchJob,
    key: u64,
    slot: Arc<SessionSlot>,
    stride: usize,
    /// Single-flag cancel set (flag index 0).
    cancel: CancelSet,
    phase: Mutex<JobPhase>,
    cv: Condvar,
    events: EventLog,
}

impl JobState {
    /// Resolves the job terminally: counters, the terminal event line,
    /// the journal's fsync'd `finished` record, phase flip, waiter
    /// wake-up, log close, and retention compaction — in that order, so
    /// a parseable `finished` record on disk implies the complete event
    /// history precedes it.
    fn finish(&self, report: JobReport, shared: &Shared) {
        match report.status {
            JobStatus::Done => ServeMetrics::bump(&shared.metrics.jobs_done),
            JobStatus::Canceled => ServeMetrics::bump(&shared.metrics.jobs_canceled),
            JobStatus::Failed(_) => ServeMetrics::bump(&shared.metrics.jobs_failed),
        }
        let line = event_line("finished", self.id, |s| {
            tdp_jsonio::field_str(s, "state", report.status.label());
            tdp_jsonio::field_raw(s, "report", &job_json(&report));
        });
        shared.push_event(self, &line);
        shared.journal_append(&journal::finished_record(self.id, &report), true);
        *self.phase.lock().expect("job phase lock") = JobPhase::Finished(Box::new(report));
        self.cv.notify_all();
        self.events.close();
        shared.note_finished(self.id);
    }

    fn is_finished(&self) -> bool {
        matches!(
            *self.phase.lock().expect("job phase lock"),
            JobPhase::Finished(_)
        )
    }
}

/// A job-table entry: live state, or the tombstone a finished job
/// leaves behind once its memory is compacted under `--retain`.
enum JobEntry {
    Live(Arc<JobState>),
    /// Everything `status`/`events` need that the journal does not
    /// re-derive cheaply; the report and event lines themselves are
    /// re-read from the journal on demand.
    Compacted {
        key: u64,
        state: &'static str,
    },
}

/// What a job-id lookup resolves to.
enum JobRef {
    Live(Arc<JobState>),
    Compacted {
        id: usize,
        key: u64,
        state: &'static str,
    },
}

/// The job table: id-keyed (NOT `Vec`-indexed — compaction must be able
/// to drop a job's memory without renumbering every later job), plus
/// the FIFO of finished jobs still resident, oldest first.
#[derive(Default)]
struct JobTable {
    /// Ids ever assigned; the next submit takes `next_id`.
    next_id: usize,
    entries: HashMap<usize, JobEntry>,
    /// Finished jobs whose state is still in memory, in finish order —
    /// the compaction queue.
    resident: VecDeque<usize>,
}

/// State shared by the acceptor, handlers and workers.
struct Shared {
    cfg: ServerConfig,
    workers: usize,
    addr: SocketAddr,
    cache: SessionCache,
    metrics: ServeMetrics,
    jobs: Mutex<JobTable>,
    queue: parx::TaskQueue<usize>,
    shutting_down: AtomicBool,
    /// Live connections by id, so shutdown can unblock their reads. A
    /// handler *must* unregister on exit — a resident daemon would
    /// otherwise leak one fd per closed connection.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: std::sync::atomic::AtomicU64,
    /// Handler ids whose threads have exited and whose `JoinHandle`s
    /// await reaping by the acceptor.
    dead_conns: Mutex<Vec<u64>>,
    /// The write-ahead log, when durability is enabled.
    journal: Option<Journal>,
    /// The resident span ring `trace_dump` serves, when tracing is on.
    trace: Option<tdp_trace::TraceRing>,
}

impl Shared {
    fn job(&self, id: usize) -> Option<JobRef> {
        match self.jobs.lock().expect("jobs lock").entries.get(&id) {
            None => None,
            Some(JobEntry::Live(job)) => Some(JobRef::Live(Arc::clone(job))),
            Some(JobEntry::Compacted { key, state }) => Some(JobRef::Compacted {
                id,
                key: *key,
                state,
            }),
        }
    }

    /// Appends one record to the journal, if one is configured. Append
    /// failures are reported but do not fail the job — the daemon
    /// degrades to in-memory operation rather than refusing work.
    fn journal_append(&self, record: &str, sync: bool) {
        if let Some(j) = &self.journal {
            match j.append(record, sync) {
                Ok(()) => ServeMetrics::bump(&self.metrics.journal_appends),
                Err(e) => eprintln!("tdp-serve: journal append failed: {e}"),
            }
        }
    }

    /// Pushes one line into a job's event log and journals it (unsynced:
    /// event records are made durable by the next transition's fsync on
    /// the same file).
    fn push_event(&self, job: &JobState, line: &str) {
        let Some(seq) = job.events.push(line) else {
            return; // log already closed: terminal state won the race
        };
        if self.journal.is_some() {
            self.journal_append(&journal::event_record(job.id, seq, line), false);
        }
    }

    /// Records a job as finished-and-journaled and enforces the
    /// retention cap.
    fn note_finished(&self, id: usize) {
        let mut table = self.jobs.lock().expect("jobs lock");
        table.resident.push_back(id);
        self.compact_locked(&mut table);
    }

    /// Compacts the oldest finished jobs beyond [`ServerConfig::retain`]:
    /// their `JobState` (event log and report included) is replaced by a
    /// tombstone, and later reads are served from the journal. Only
    /// meaningful with a journal — [`Server::start`] rejects `retain`
    /// without one.
    fn compact_locked(&self, table: &mut JobTable) {
        if self.cfg.retain == 0 || self.journal.is_none() {
            return;
        }
        while table.resident.len() > self.cfg.retain {
            let Some(id) = table.resident.pop_front() else {
                break;
            };
            let Some(entry) = table.entries.get_mut(&id) else {
                continue;
            };
            let JobEntry::Live(job) = entry else { continue };
            let phase = job.phase.lock().expect("job phase lock");
            let JobPhase::Finished(report) = &*phase else {
                continue; // defensive: only finished jobs enter `resident`
            };
            let (key, state) = (job.key, static_label(&report.status));
            drop(phase);
            *entry = JobEntry::Compacted { key, state };
            ServeMetrics::bump(&self.metrics.jobs_compacted);
        }
    }

    /// Registers a connection for shutdown teardown; `false` means the
    /// connection is refused — either the server is shutting down, or
    /// the stream could not be cloned into the registry (in which case
    /// serving it would leave a blocking read that
    /// [`Shared::initiate_shutdown`] can never unblock).
    fn register_conn(&self, stream: &TcpStream, id: u64) -> bool {
        let Ok(clone) = stream.try_clone() else {
            return false;
        };
        let mut conns = self.conns.lock().expect("conns lock");
        conns.insert(id, clone);
        // Checked under the conns lock: `initiate_shutdown` sets the
        // flag before sweeping this map, so either we see the flag here
        // or the sweep sees our entry — never neither.
        if self.shutting_down.load(Ordering::SeqCst) {
            conns.remove(&id);
            false
        } else {
            true
        }
    }

    /// Drops a finished connection's registry entry (and its fd).
    fn unregister_conn(&self, id: u64) {
        self.conns.lock().expect("conns lock").remove(&id);
    }

    /// Folds this thread's finished span chunks (and any other chunks
    /// flushed to the registry, e.g. by parx worker threads exiting)
    /// into the resident ring. Called after each request and each job;
    /// a no-op when tracing is off.
    fn absorb_trace(&self) {
        if let Some(ring) = &self.trace {
            tdp_trace::flush_thread();
            ring.absorb(tdp_trace::take());
        }
    }

    fn initiate_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // No new work; workers drain what is queued (fast-failing it).
        self.queue.close();
        // Stop in-flight flows at their next observer callback.
        for entry in self.jobs.lock().expect("jobs lock").entries.values() {
            if let JobEntry::Live(job) = entry {
                if !job.is_finished() {
                    job.cancel.cancel(0);
                }
            }
        }
        // Unblock every handler thread's read/write...
        for conn in self.conns.lock().expect("conns lock").values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // ...and the acceptor.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server. Keep the handle: dropping it shuts the server down
/// and joins every thread.
pub struct ServerHandle {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Initiates shutdown without blocking (idempotent; also triggered
    /// by the wire `shutdown` command).
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// Blocks until the server has fully stopped: acceptor, handlers and
    /// workers all joined.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.initiate_shutdown();
        self.join_inner();
    }
}

/// The service entry point.
pub struct Server;

impl Server {
    /// Binds, replays the journal (when configured), spawns the worker
    /// pool and the acceptor, and returns immediately.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable, journal
    /// open errors, and `InvalidInput` for `retain` without `journal`
    /// (compacted jobs are re-served from the journal; without one,
    /// compaction would destroy their state).
    pub fn start(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        if cfg.retain > 0 && cfg.journal.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "retain requires a journal: compacted jobs are re-served from the journal",
            ));
        }
        let (journal, records) = match &cfg.journal {
            Some(dir) => {
                let (j, records) = Journal::open(dir)?;
                (Some(j), records)
            }
            None => (None, Vec::new()),
        };
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = parx::resolve_threads(cfg.workers);
        let trace = if cfg.trace_ring > 0 {
            // Enable, never disable: the recorder is process-global and
            // another in-process server (tests) may still be tracing.
            // Enabled tracing only appends to thread-local buffers — it
            // cannot change any result.
            tdp_trace::set_enabled(true);
            Some(tdp_trace::TraceRing::new(cfg.trace_ring))
        } else {
            None
        };
        let shared = Arc::new(Shared {
            cache: SessionCache::new(cfg.cache_capacity),
            metrics: ServeMetrics::new(),
            jobs: Mutex::new(JobTable::default()),
            queue: parx::TaskQueue::new(),
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: std::sync::atomic::AtomicU64::new(0),
            dead_conns: Mutex::new(Vec::new()),
            journal,
            trace,
            workers,
            addr,
            cfg,
        });

        // Replay before any worker or connection exists: recovered jobs
        // must be visible (and re-enqueued jobs queued, in id order)
        // before the first post-restart request lands.
        if !records.is_empty() {
            replay_journal(&shared, records);
        }

        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("tdp-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }

        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tdp-serve-acceptor".to_string())
                .spawn(move || {
                    let mut handlers: HashMap<u64, JoinHandle<()>> = HashMap::new();
                    for stream in listener.incoming() {
                        // Reap handlers whose connections have closed —
                        // a resident daemon must not accumulate one
                        // dead JoinHandle per served connection.
                        reap_dead_handlers(&shared, &mut handlers);
                        if shared.shutting_down.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                        let conn_shared = Arc::clone(&shared);
                        if let Ok(h) = std::thread::Builder::new()
                            .name("tdp-serve-conn".to_string())
                            .spawn(move || handle_connection(&conn_shared, stream, conn_id))
                        {
                            handlers.insert(conn_id, h);
                        }
                    }
                    reap_dead_handlers(&shared, &mut handlers);
                    for (_, h) in handlers.drain() {
                        let _ = h.join();
                        ServeMetrics::bump(&shared.metrics.conns_reaped);
                    }
                    for h in worker_handles {
                        let _ = h.join();
                    }
                })?
        };

        Ok(ServerHandle {
            shared,
            supervisor: Some(supervisor),
        })
    }
}

/// Joins the handlers whose connections have announced their exit via
/// `dead_conns`. An id whose handle is not registered yet (the handler
/// exited before the acceptor inserted it) is put back for the next
/// sweep.
fn reap_dead_handlers(shared: &Shared, handlers: &mut HashMap<u64, JoinHandle<()>>) {
    let dead = std::mem::take(&mut *shared.dead_conns.lock().expect("dead conns lock"));
    let mut unmatched = Vec::new();
    for id in dead {
        match handlers.remove(&id) {
            Some(h) => {
                let _ = h.join();
                ServeMetrics::bump(&shared.metrics.conns_reaped);
            }
            None => unmatched.push(id),
        }
    }
    if !unmatched.is_empty() {
        shared
            .dead_conns
            .lock()
            .expect("dead conns lock")
            .extend(unmatched);
    }
}

// ---------------------------------------------------------------------
// Journal replay
// ---------------------------------------------------------------------

/// Rebuilds the job table from the journal's records: finished jobs are
/// restored with their reports and event logs (no done/failed counter
/// bumps — they were counted by the instance that ran them), unfinished
/// jobs are re-enqueued in id order (deterministic re-runs regenerate
/// their exact event streams and reports) or, under `replay = false`,
/// resolved failed-by-restart through the normal finish path (which
/// journals the terminal record, so later restarts agree).
fn replay_journal(shared: &Shared, records: Vec<Record>) {
    let mut submits: Vec<Box<SubmitRecord>> = Vec::new();
    let mut events: HashMap<usize, Vec<String>> = HashMap::new();
    let mut finished: HashMap<usize, Box<JobReport>> = HashMap::new();
    let replayed = records.len() as u64;
    for rec in records {
        match rec {
            Record::Submit(sub) => submits.push(sub),
            // Scheduler state is rebuilt from scratch, not trusted: a
            // journaled "running" only means the crash interrupted it.
            Record::State { .. } => {}
            Record::Event { job, seq, line } => {
                let lines = events.entry(job).or_default();
                // seq == len: append. seq < len: a pre-crash attempt's
                // duplicate of a line the re-run regenerated identically
                // (determinism) — keep the first copy. seq > len cannot
                // survive the open-time truncation; ignore defensively.
                if seq == lines.len() {
                    lines.push(line);
                }
            }
            Record::Finished { job, report } => {
                finished.insert(job, report);
            }
        }
    }
    shared
        .metrics
        .journal_replays
        .fetch_add(replayed, Ordering::Relaxed);

    let mut recovered = 0u64;
    let mut failed_by_restart: Vec<Arc<JobState>> = Vec::new();
    for sub in submits {
        let id = sub.job;
        let report = finished.remove(&id);
        let state = match rebuild_job_state(shared, &sub, report, &mut events) {
            Ok(state) => state,
            Err(msg) => {
                eprintln!("tdp-serve: journal replay skipped job {id}: {msg}");
                continue;
            }
        };
        let restored_finished = state.is_finished();
        {
            let mut table = shared.jobs.lock().expect("jobs lock");
            table.entries.insert(id, JobEntry::Live(Arc::clone(&state)));
            table.next_id = table.next_id.max(id + 1);
            if restored_finished {
                table.resident.push_back(id);
            }
        }
        recovered += 1;
        if !restored_finished {
            if shared.cfg.replay {
                // Workers have not spawned yet; the push cannot race a
                // closed queue.
                shared.queue.push(id);
            } else {
                failed_by_restart.push(state);
            }
        }
    }
    for state in failed_by_restart {
        state.finish(
            failed_report(
                &state,
                "job interrupted by daemon restart (replay disabled)".into(),
            ),
            shared,
        );
    }
    shared
        .metrics
        .jobs_recovered
        .fetch_add(recovered, Ordering::Relaxed);
    let mut table = shared.jobs.lock().expect("jobs lock");
    shared.compact_locked(&mut table);
}

/// Reconstructs one journaled job's `JobState`. With `report`, the job
/// comes back finished: closed pre-populated event log, detached
/// session slot (it will never run). Without, it comes back queued with
/// an empty log, holding a real cache slot for its re-run (the checkout
/// does not count as a cache hit/miss — replay is recovery, not a
/// submit).
fn rebuild_job_state(
    shared: &Shared,
    sub: &SubmitRecord,
    report: Option<Box<JobReport>>,
    events: &mut HashMap<usize, Vec<String>>,
) -> Result<Arc<JobState>, String> {
    let objective = parse_objective(&sub.objective)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| {
            format!(
                "journaled objective {:?} is not a single objective",
                sub.objective
            )
        })?;
    let profile = Profile::parse(&sub.profile).map_err(|e| e.to_string())?;
    let mut jobs = make_jobs_for(
        &sub.name,
        &sub.params,
        Some(&objective),
        profile,
        &sub.overrides,
    )
    .map_err(|e| e.to_string())?;
    if jobs.len() != 1 {
        return Err(format!("rebuilt {} jobs, expected 1", jobs.len()));
    }
    let job = jobs.remove(0);
    let key = design_key(&sub.params);
    let (slot, phase, log) = match report {
        Some(report) => (
            // Never runs again: no reason to hold (or build) a session.
            Arc::new(SessionSlot::default()),
            JobPhase::Finished(report),
            EventLog::restored(events.remove(&sub.job).unwrap_or_default()),
        ),
        None => {
            let (slot, _hit, _evictions) = shared.cache.checkout(key)?;
            // The pre-crash attempt's partial event lines are dropped:
            // the deterministic re-run regenerates every one of them
            // (journal replay dedupes the re-journaled copies by seq).
            (slot, JobPhase::Queued, EventLog::default())
        }
    };
    Ok(Arc::new(JobState {
        id: sub.job,
        job,
        key,
        slot,
        stride: sub.stride.max(1),
        cancel: CancelSet::new(1),
        phase: Mutex::new(phase),
        cv: Condvar::new(),
        events: log,
    }))
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

/// Renders flow events into the job's event log (journaling each line).
struct LogSink<'a> {
    shared: &'a Shared,
    job: &'a JobState,
}

impl BatchSink for LogSink<'_> {
    fn on_event(&self, event: &BatchEvent) {
        let line = match event {
            BatchEvent::JobStarted {
                job,
                case,
                objective,
            } => event_line("started", *job, |s| {
                tdp_jsonio::field_str(s, "case", case);
                tdp_jsonio::field_str(s, "objective", objective);
            }),
            BatchEvent::Phase { job, phase } => event_line("phase", *job, |s| {
                let name = match phase {
                    FlowPhase::Setup => "setup",
                    FlowPhase::GlobalPlacement => "global_placement",
                    FlowPhase::Legalization => "legalization",
                    FlowPhase::Evaluation => "evaluation",
                };
                tdp_jsonio::field_str(s, "phase", name);
            }),
            BatchEvent::Iteration {
                job,
                iter,
                hpwl,
                overflow,
            } => event_line("iteration", *job, |s| {
                tdp_jsonio::field_num(s, "iter", *iter as f64);
                tdp_jsonio::field_num(s, "hpwl", *hpwl);
                tdp_jsonio::field_num(s, "overflow", *overflow);
            }),
            BatchEvent::TimingAnalysis {
                job,
                iter,
                tns,
                wns,
            } => event_line("timing", *job, |s| {
                tdp_jsonio::field_num(s, "iter", *iter as f64);
                tdp_jsonio::field_num(s, "tns", *tns);
                tdp_jsonio::field_num(s, "wns", *wns);
            }),
            BatchEvent::Congestion {
                job,
                iter,
                peak,
                overflow,
            } => event_line("congestion", *job, |s| {
                tdp_jsonio::field_num(s, "iter", *iter as f64);
                tdp_jsonio::field_num(s, "peak", *peak);
                tdp_jsonio::field_num(s, "overflow", *overflow);
            }),
            // The terminal line is pushed by `JobState::finish` (which
            // also closes the log), not by the sink.
            BatchEvent::JobFinished { .. } => return,
        };
        self.shared.push_event(self.job, &line);
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(id) = shared.queue.pop() {
        let Some(JobRef::Live(job)) = shared.job(id) else {
            continue;
        };
        {
            let _span = tdp_trace::span_job("serve.job", "serve", id as u64);
            run_job(shared, &job);
        }
        shared.absorb_trace();
    }
}

/// The report of a job that could not run (mirrors the batch runner's
/// failed-report shape).
fn failed_report(job: &JobState, msg: String) -> JobReport {
    JobReport {
        job: job.id,
        case: job.job.case.clone(),
        objective: job.job.spec.objective().label(),
        cells: 0,
        nets: 0,
        status: JobStatus::Failed(msg),
        iterations: 0,
        legal: false,
        metrics: None,
        congestion: None,
        placement_hash: 0,
        runtime: Default::default(),
    }
}

/// Best-effort text of a panic payload.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_job(shared: &Shared, job: &JobState) {
    if shared.shutting_down.load(Ordering::SeqCst) {
        // Drained off the closed queue: never started, fail fast so
        // waiters wake and shutdown stays prompt.
        job.finish(
            failed_report(job, "server shut down before the job started".into()),
            shared,
        );
        return;
    }
    *job.phase.lock().expect("job phase lock") = JobPhase::Running;
    shared.journal_append(&journal::state_record(job.id, "running"), true);
    let sink = LogSink { shared, job };
    sink.on_event(&BatchEvent::JobStarted {
        job: job.id,
        case: job.job.case.clone(),
        objective: job.job.spec.objective().label(),
    });
    // One catch_unwind around *everything* that can assert — design
    // generation and session construction included (inline params are
    // only type-checked at submit, so the generator may still reject
    // them with a panic). A panic must fail the job, never the worker:
    // a dead worker would strand the queue and every waiter.
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        match job.slot.session(&job.job.params) {
            Err(msg) => failed_report(job, msg),
            Ok(session_mutex) => match session_mutex.lock() {
                // A panic inside an earlier job poisoned this design's
                // session; fail cleanly rather than run on half-updated
                // state (same policy as the batch runner's group
                // poisoning).
                Err(_) => failed_report(
                    job,
                    "session poisoned by a previous job's panic on this design".into(),
                ),
                Ok(mut session) => execute_job(
                    job.id,
                    &job.job,
                    &mut session,
                    &sink,
                    &job.cancel,
                    0,
                    job.stride,
                ),
            },
        }
    }));
    let report = attempt.unwrap_or_else(|payload| {
        failed_report(job, format!("job panicked: {}", panic_text(payload)))
    });
    job.finish(report, shared);
}

// ---------------------------------------------------------------------
// Connection side
// ---------------------------------------------------------------------

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Per-connection ECO state: one open [`eco::EcoSession`] plus the
/// cache pin that keeps its design resident for the session's lifetime.
struct EcoConn {
    key: u64,
    /// Keeps the slot alive even if the cache entry were dropped; the
    /// pin makes that impossible, but the `Arc` costs nothing and makes
    /// the session's independence from cache internals explicit.
    _slot: Arc<SessionSlot>,
    eco: eco::EcoSession,
}

/// Releases an ECO session's cache pin and folds its cumulative stats
/// into the server metrics. Shared by `eco_close` and the disconnect
/// path, so a vanished client can never leak a pin.
fn close_eco(shared: &Shared, conn: EcoConn) -> tdp_core::EcoStats {
    let stats = conn.eco.stats();
    shared.metrics.fold_eco(&stats);
    shared.cache.unpin(conn.key);
    stats
}

/// The connection's open ECO session, or the uniform "open one first"
/// protocol error.
fn eco_session(conn: &mut Option<EcoConn>) -> Result<&mut EcoConn, ProtoError> {
    conn.as_mut()
        .ok_or_else(|| ProtoError::new("no eco session open on this connection (eco_open first)"))
}

fn handle_connection(shared: &Shared, stream: TcpStream, conn_id: u64) {
    if shared.register_conn(&stream, conn_id) {
        serve_requests(shared, stream);
        shared.unregister_conn(conn_id);
    } else {
        let _ = stream.shutdown(Shutdown::Both);
    }
    // On every exit path — refused connections included — hand this
    // handler's id to the acceptor so its JoinHandle is reaped.
    shared
        .dead_conns
        .lock()
        .expect("dead conns lock")
        .push(conn_id);
}

/// The per-connection request loop; returns on EOF, socket teardown or
/// a failed write.
fn serve_requests(shared: &Shared, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    let mut eco_conn: Option<EcoConn> = None;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF or torn-down socket
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        ServeMetrics::bump(&shared.metrics.requests);
        let outcome = match parse_request(line.trim_end()) {
            Err(e) => write_line(&mut writer, &e.to_response()),
            Ok(request) => {
                let (verb, span_name, job) = request_names(&request);
                let t0 = std::time::Instant::now();
                let result = {
                    let _span = match job {
                        Some(id) => tdp_trace::span_job(span_name, "serve", id),
                        None => tdp_trace::span(span_name, "serve"),
                    };
                    dispatch(shared, request, &mut writer, &mut eco_conn)
                };
                shared
                    .metrics
                    .latency
                    .observe(verb, t0.elapsed().as_secs_f64());
                shared.absorb_trace();
                result
            }
        };
        if outcome.is_err() {
            break; // client went away mid-response
        }
    }
    // Disconnect auto-close: release the pin and account the session's
    // stats even when the client never sent `eco_close`.
    if let Some(conn) = eco_conn.take() {
        close_eco(shared, conn);
    }
}

/// One pass over the job table: scheduler gauges plus the congestion
/// aggregates of every finished report still resident. Compaction
/// removes a finished job's report from memory, so on a retention-capped
/// server the congestion aggregates cover the retained window, not all
/// time. Iteration is in id order: the float sum must be deterministic.
fn snapshot(shared: &Shared) -> (crate::metrics::Gauges, (usize, f64, f64)) {
    let table = shared.jobs.lock().expect("jobs lock");
    let mut queued = 0usize;
    let mut running = 0usize;
    let mut events_resident = 0usize;
    let mut congestion = (0usize, 0.0f64, 0.0f64); // (jobs, Σ overflow, peak max)
    for id in 0..table.next_id {
        let Some(JobEntry::Live(j)) = table.entries.get(&id) else {
            continue;
        };
        events_resident += j.events.len();
        match &*j.phase.lock().expect("job phase lock") {
            JobPhase::Queued => queued += 1,
            JobPhase::Running => running += 1,
            JobPhase::Finished(report) => {
                if let Some(c) = report.congestion {
                    congestion.0 += 1;
                    congestion.1 += c.overflow;
                    congestion.2 = congestion.2.max(c.peak);
                }
            }
        }
    }
    (
        crate::metrics::Gauges {
            workers: shared.workers,
            jobs_total: table.next_id,
            jobs_queued: queued,
            jobs_running: running,
            cache_entries: shared.cache.len(),
            cache_capacity: shared.cache.capacity(),
            events_resident,
        },
        congestion,
    )
}

/// The wire verb, span name and (when the request addresses one) job id
/// of a request — static strings so the histogram and span recorder can
/// label without allocating.
fn request_names(req: &Request) -> (&'static str, &'static str, Option<u64>) {
    match req {
        Request::Submit(_) => ("submit", "serve.submit", None),
        Request::Status { job } => ("status", "serve.status", Some(*job as u64)),
        Request::Wait { job } => ("wait", "serve.wait", Some(*job as u64)),
        Request::Events { job, .. } => ("events", "serve.events", Some(*job as u64)),
        Request::Cancel { job } => ("cancel", "serve.cancel", Some(*job as u64)),
        Request::Metrics => ("metrics", "serve.metrics", None),
        Request::MetricsText => ("metrics_text", "serve.metrics_text", None),
        Request::Shutdown => ("shutdown", "serve.shutdown", None),
        Request::EcoOpen { .. } => ("eco_open", "serve.eco_open", None),
        Request::EcoApply { .. } => ("eco_apply", "serve.eco_apply", None),
        Request::EcoQuery { .. } => ("eco_query", "serve.eco_query", None),
        Request::EcoRevert { .. } => ("eco_revert", "serve.eco_revert", None),
        Request::EcoClose => ("eco_close", "serve.eco_close", None),
        Request::TraceDump => ("trace_dump", "serve.trace_dump", None),
    }
}

/// Handles one request; `Err` means the socket died and the connection
/// loop should end. `eco_conn` is the connection's ECO session slot —
/// the `eco_*` verbs operate on it and every other verb ignores it.
fn dispatch(
    shared: &Shared,
    request: Request,
    writer: &mut TcpStream,
    eco_conn: &mut Option<EcoConn>,
) -> std::io::Result<()> {
    match request {
        Request::Submit(req) => match handle_submit(shared, &req) {
            Err(e) => write_line(writer, &e.to_response()),
            Ok(response) => write_line(writer, &response),
        },
        Request::Status { job } => match shared.job(job) {
            None => write_line(writer, &unknown_job(job)),
            Some(JobRef::Live(j)) => write_line(writer, &render_status("status", &j)),
            Some(JobRef::Compacted { id, key, .. }) => {
                match render_compacted_status(shared, "status", id, key) {
                    Err(e) => write_line(writer, &e.to_response()),
                    Ok(s) => write_line(writer, &s),
                }
            }
        },
        Request::Wait { job } => match shared.job(job) {
            None => write_line(writer, &unknown_job(job)),
            Some(JobRef::Live(j)) => {
                let mut phase = j.phase.lock().expect("job phase lock");
                while !matches!(*phase, JobPhase::Finished(_)) {
                    phase = j.cv.wait(phase).expect("job phase lock");
                }
                drop(phase);
                write_line(writer, &render_status("wait", &j))
            }
            // Compacted jobs are terminal by construction: answer now.
            Some(JobRef::Compacted { id, key, .. }) => {
                match render_compacted_status(shared, "wait", id, key) {
                    Err(e) => write_line(writer, &e.to_response()),
                    Ok(s) => write_line(writer, &s),
                }
            }
        },
        Request::Events { job, from } => match shared.job(job) {
            None => write_line(writer, &unknown_job(job)),
            Some(JobRef::Live(j)) => {
                ServeMetrics::bump(&shared.metrics.event_streams);
                let mut index = from;
                let mut sent = 0usize;
                loop {
                    let (lines, closed) = j.events.wait_from(index);
                    if lines.is_empty() && closed {
                        if sent == 0 {
                            // `from` pointed at or past the terminal
                            // `finished` line, so the stream replayed
                            // nothing. Emit an explicit terminator —
                            // a silent empty stream would deadlock a
                            // client waiting for a terminal event.
                            let state = j.phase.lock().expect("job phase lock").label().to_string();
                            let end = event_line("end", j.id, |s| {
                                tdp_jsonio::field_str(s, "state", &state);
                            });
                            return write_line(writer, &end);
                        }
                        return Ok(());
                    }
                    index += lines.len();
                    sent += lines.len();
                    for l in &lines {
                        write_line(writer, l)?;
                    }
                }
            }
            Some(JobRef::Compacted { id, state, .. }) => {
                ServeMetrics::bump(&shared.metrics.event_streams);
                // The journal holds the complete stream (terminal
                // `finished` line included); replay the requested
                // suffix byte-identically to the live stream.
                let lines = shared
                    .journal
                    .as_ref()
                    .and_then(|j| journal::read_compacted(j.path(), id).ok())
                    .map(|c| c.events)
                    .unwrap_or_default();
                if from < lines.len() {
                    for l in &lines[from..] {
                        write_line(writer, l)?;
                    }
                    Ok(())
                } else {
                    let end = event_line("end", id, |s| {
                        tdp_jsonio::field_str(s, "state", state);
                    });
                    write_line(writer, &end)
                }
            }
        },
        Request::Cancel { job } => match shared.job(job) {
            None => write_line(writer, &unknown_job(job)),
            Some(j) => {
                // Compacted jobs are already terminal; cancel is the
                // same no-op it is for a live finished job.
                if let JobRef::Live(j) = &j {
                    j.cancel.cancel(0);
                }
                let mut s = ok_prefix("cancel");
                tdp_jsonio::field_num(&mut s, "job", job as f64);
                s.push('}');
                write_line(writer, &s)
            }
        },
        Request::Metrics => {
            let (gauges, congestion) = snapshot(shared);
            let mut s = ok_prefix("metrics");
            shared.metrics.render(&mut s, &gauges);
            tdp_jsonio::field_num(&mut s, "congestion_jobs", congestion.0 as f64);
            tdp_jsonio::field_num(&mut s, "congestion_overflow_sum", congestion.1);
            tdp_jsonio::field_num(&mut s, "congestion_peak_max", congestion.2);
            s.push('}');
            write_line(writer, &s)
        }
        Request::MetricsText => {
            let (gauges, _) = snapshot(shared);
            let text = shared.metrics.render_prometheus(&gauges);
            let mut s = ok_prefix("metrics_text");
            tdp_jsonio::field_str(&mut s, "text", &text);
            s.push('}');
            write_line(writer, &s)
        }
        Request::Shutdown => {
            let mut s = ok_prefix("shutdown");
            tdp_jsonio::field_num(
                &mut s,
                "jobs",
                shared.jobs.lock().expect("jobs lock").next_id as f64,
            );
            s.push('}');
            let result = write_line(writer, &s);
            shared.initiate_shutdown();
            result
        }
        Request::EcoOpen { design } => match handle_eco_open(shared, eco_conn, &design) {
            Err(e) => write_line(writer, &e.to_response()),
            Ok(response) => write_line(writer, &response),
        },
        Request::EcoApply { deltas } => {
            let response = eco_session(eco_conn).and_then(|conn| {
                let batch = eco::delta_batch_from_json(conn.eco.design(), &deltas)
                    .map_err(ProtoError::new)?;
                let summary = conn
                    .eco
                    .apply(&batch)
                    .map_err(|e| ProtoError::new(e.to_string()))?;
                ServeMetrics::bump(&shared.metrics.eco_applies);
                let mut s = ok_prefix("eco_apply");
                tdp_jsonio::field_num(&mut s, "moved_cells", summary.moved_cells.len() as f64);
                tdp_jsonio::field_num(&mut s, "dirty_nets", summary.dirty_nets.len() as f64);
                tdp_jsonio::field_num(&mut s, "checkpoint", conn.eco.checkpoint() as f64);
                s.push('}');
                Ok(s)
            });
            match response {
                Err(e) => write_line(writer, &e.to_response()),
                Ok(s) => write_line(writer, &s),
            }
        }
        Request::EcoQuery { full, paths } => {
            let response = eco_session(eco_conn).map(|conn| {
                match full {
                    Some(true) => conn.eco.reanalyze(eco::EcoMode::Full),
                    Some(false) => conn.eco.reanalyze(eco::EcoMode::Incremental),
                    None => {}
                }
                ServeMetrics::bump(&shared.metrics.eco_queries);
                let mut s = ok_prefix("eco_query");
                tdp_jsonio::field_raw(&mut s, "result", &conn.eco.query(paths).to_json().encode());
                s.push('}');
                s
            });
            match response {
                Err(e) => write_line(writer, &e.to_response()),
                Ok(s) => write_line(writer, &s),
            }
        }
        Request::EcoRevert { to } => {
            let response = eco_session(eco_conn).and_then(|conn| {
                match to {
                    Some(cp) => conn.eco.revert_to(cp),
                    None => conn.eco.revert(),
                }
                .map_err(|e| ProtoError::new(e.to_string()))?;
                ServeMetrics::bump(&shared.metrics.eco_reverts);
                let mut s = ok_prefix("eco_revert");
                tdp_jsonio::field_num(&mut s, "checkpoint", conn.eco.checkpoint() as f64);
                s.push('}');
                Ok(s)
            });
            match response {
                Err(e) => write_line(writer, &e.to_response()),
                Ok(s) => write_line(writer, &s),
            }
        }
        Request::EcoClose => match eco_conn.take() {
            None => write_line(
                writer,
                &ProtoError::new("no eco session open on this connection (eco_open first)")
                    .to_response(),
            ),
            Some(conn) => {
                let stats = close_eco(shared, conn);
                let mut s = ok_prefix("eco_close");
                tdp_jsonio::field_num(&mut s, "queries", stats.queries as f64);
                tdp_jsonio::field_num(&mut s, "cells_moved", stats.cells_moved as f64);
                tdp_jsonio::field_num(&mut s, "dirty_nets", stats.dirty_nets as f64);
                tdp_jsonio::field_num(&mut s, "incremental_ns", stats.incremental_ns as f64);
                tdp_jsonio::field_num(&mut s, "full_ns", stats.full_ns as f64);
                s.push('}');
                write_line(writer, &s)
            }
        },
        Request::TraceDump => match &shared.trace {
            None => write_line(
                writer,
                &ProtoError::new("tracing is disabled on this server (--trace-ring 0)")
                    .to_response(),
            ),
            Some(ring) => {
                let chunks = ring.snapshot();
                let trace = tdp_trace::chrome_trace(&chunks);
                let events: usize = chunks.iter().map(|c| c.events.len()).sum();
                let mut s = ok_prefix("trace_dump");
                tdp_jsonio::field_num(&mut s, "events", events as f64);
                tdp_jsonio::field_raw(&mut s, "trace", &trace.encode());
                s.push('}');
                write_line(writer, &s)
            }
        },
    }
}

fn handle_eco_open(
    shared: &Shared,
    eco_conn: &mut Option<EcoConn>,
    design: &DesignRef,
) -> Result<String, ProtoError> {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return Err(ProtoError::new("server is shutting down"));
    }
    if eco_conn.is_some() {
        return Err(ProtoError::new(
            "an eco session is already open on this connection (eco_close first)",
        ));
    }
    let (_name, params) = resolve_design(design)?;
    let key = design_key(&params);
    let (slot, hit, evictions) = shared.cache.checkout_pinned(key).map_err(ProtoError::new)?;
    if hit {
        ServeMetrics::bump(&shared.metrics.cache_hits);
    } else {
        ServeMetrics::bump(&shared.metrics.cache_misses);
    }
    for _ in 0..evictions {
        ServeMetrics::bump(&shared.metrics.cache_evictions);
    }
    let opened = slot
        .session(&params)
        .and_then(|session_mutex| {
            session_mutex.lock().map_err(|_| {
                "session poisoned by a previous job's panic on this design".to_string()
            })
        })
        .map(|session| {
            // Server-side ECO sessions analyze single-threaded: answers
            // must be bitwise reproducible regardless of daemon sizing.
            eco::EcoSession::open(&session, eco::rc_params_for(&params), 1)
        });
    let eco = match opened {
        Ok(eco) => eco,
        Err(msg) => {
            // The open failed after the pin was taken; release it or
            // the broken design would block eviction forever.
            shared.cache.unpin(key);
            return Err(ProtoError::new(msg));
        }
    };
    ServeMetrics::bump(&shared.metrics.eco_opens);
    let mut s = ok_prefix("eco_open");
    tdp_jsonio::field_str(&mut s, "design", &format!("{key:#018x}"));
    tdp_jsonio::field_bool(&mut s, "cached", hit);
    tdp_jsonio::field_num(&mut s, "cells", eco.design().num_cells() as f64);
    tdp_jsonio::field_num(&mut s, "nets", eco.design().num_nets() as f64);
    tdp_jsonio::field_num(&mut s, "clock_period", eco.design().sdc().clock_period);
    s.push('}');
    *eco_conn = Some(EcoConn {
        key,
        _slot: slot,
        eco,
    });
    Ok(s)
}

fn unknown_job(job: usize) -> String {
    ProtoError::new(format!("unknown job {job}")).to_response()
}

fn render_status(cmd: &str, job: &JobState) -> String {
    let phase = job.phase.lock().expect("job phase lock");
    let mut s = ok_prefix(cmd);
    tdp_jsonio::field_num(&mut s, "job", job.id as f64);
    tdp_jsonio::field_str(&mut s, "state", phase.label());
    tdp_jsonio::field_str(&mut s, "design", &format!("{:#018x}", job.key));
    if let JobPhase::Finished(report) = &*phase {
        tdp_jsonio::field_raw(&mut s, "report", &job_json(report));
    }
    s.push('}');
    s
}

/// Re-renders a compacted job's `status`/`wait` response from its
/// journaled report — byte-identical to what [`render_status`] produced
/// while the job was resident (the journal round-trip is exact).
fn render_compacted_status(
    shared: &Shared,
    cmd: &str,
    id: usize,
    key: u64,
) -> Result<String, ProtoError> {
    let journal = shared
        .journal
        .as_ref()
        .ok_or_else(|| ProtoError::new(format!("job {id} was compacted without a journal")))?;
    let compacted = journal::read_compacted(journal.path(), id)
        .map_err(|e| ProtoError::new(format!("journal read failed for job {id}: {e}")))?;
    let report = compacted
        .report
        .ok_or_else(|| ProtoError::new(format!("journal holds no report for job {id}")))?;
    let mut s = ok_prefix(cmd);
    tdp_jsonio::field_num(&mut s, "job", id as f64);
    tdp_jsonio::field_str(&mut s, "state", report.status.label());
    tdp_jsonio::field_str(&mut s, "design", &format!("{key:#018x}"));
    tdp_jsonio::field_raw(&mut s, "report", &job_json(&report));
    s.push('}');
    Ok(s)
}

/// Resolves a design reference to (name, generator parameters); shared
/// by `submit` and `eco_open`.
fn resolve_design(design: &DesignRef) -> Result<(String, benchgen::CircuitParams), ProtoError> {
    match design {
        DesignRef::Case(name) => {
            let case = benchgen::case_by_name(name).ok_or_else(|| {
                let known: Vec<&str> = benchgen::full_suite().iter().map(|c| c.name).collect();
                ProtoError::new(format!(
                    "unknown case {name:?} (available: {})",
                    known.join(", ")
                ))
            })?;
            Ok((case.name.to_string(), case.params))
        }
        DesignRef::Inline(params) => Ok((params.name.clone(), params.clone())),
    }
}

fn handle_submit(shared: &Shared, req: &SubmitRequest) -> Result<String, ProtoError> {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return Err(ProtoError::new("server is shutting down"));
    }
    let (name, params) = resolve_design(&req.design)?;
    let objective = parse_objective(&req.objective)
        .map_err(|e| ProtoError::new(e.to_string()))?
        .ok_or_else(|| {
            ProtoError::new(
                "objective \"all\" is not valid on the wire; submit one job per objective",
            )
        })?;
    let profile = Profile::parse(&req.profile).map_err(|e| ProtoError::new(e.to_string()))?;
    let mut jobs = make_jobs_for(&name, &params, Some(&objective), profile, &req.overrides)
        .map_err(|e| ProtoError::new(e.to_string()))?;
    debug_assert_eq!(jobs.len(), 1, "one objective yields one job");
    let job = jobs.remove(0);

    let key = design_key(&params);
    let (slot, hit, evictions) = shared.cache.checkout(key).map_err(ProtoError::new)?;
    if hit {
        ServeMetrics::bump(&shared.metrics.cache_hits);
    } else {
        ServeMetrics::bump(&shared.metrics.cache_misses);
    }
    for _ in 0..evictions {
        ServeMetrics::bump(&shared.metrics.cache_evictions);
    }

    let stride = req.stride.unwrap_or(shared.cfg.default_stride).max(1);
    let state = {
        let mut table = shared.jobs.lock().expect("jobs lock");
        let id = table.next_id;
        table.next_id += 1;
        let state = Arc::new(JobState {
            id,
            job,
            key,
            slot,
            stride,
            cancel: CancelSet::new(1),
            phase: Mutex::new(JobPhase::Queued),
            cv: Condvar::new(),
            events: EventLog::default(),
        });
        // Journaled under the table lock so submit records land on disk
        // in id order — replay depends on it (and the WAL rule: the
        // record is durable before the job is visible).
        if shared.journal.is_some() {
            let rec = SubmitRecord {
                job: id,
                name: name.clone(),
                params: params.clone(),
                objective: req.objective.clone(),
                profile: req.profile.clone(),
                overrides: req.overrides.clone(),
                stride,
                key,
            };
            shared.journal_append(&journal::submit_record(&rec), true);
        }
        table.entries.insert(id, JobEntry::Live(Arc::clone(&state)));
        state
    };
    ServeMetrics::bump(&shared.metrics.submits);
    tdp_trace::mark("serve.submitted", "serve", Some(state.id as u64));
    if !shared.queue.push(state.id) {
        // Shutdown raced the submit; resolve the job terminally so
        // status/wait/events still behave.
        state.finish(
            failed_report(&state, "server shut down before the job started".into()),
            shared,
        );
    }
    let mut s = ok_prefix("submit");
    tdp_jsonio::field_num(&mut s, "job", state.id as f64);
    tdp_jsonio::field_str(&mut s, "design", &format!("{key:#018x}"));
    tdp_jsonio::field_bool(&mut s, "cached", hit);
    s.push('}');
    Ok(s)
}

//! The resident placement service.
//!
//! One [`Server`] owns a TCP listener, a worker pool fed by a
//! [`parx::TaskQueue`], and the [`SessionCache`]. Connections are
//! line-oriented: each accepted socket gets a handler thread that reads
//! one JSON request per line and writes one (or, for `events`, many)
//! JSON response lines — see [`crate::protocol`] for the grammar.
//!
//! # Execution path
//!
//! A `submit` resolves the design, builds the job's [`FlowSpec`](tdp_core::FlowSpec) through
//! exactly the same [`batch::make_jobs_for`] path a local run uses,
//! reserves a session slot in the cache (hit/miss counted in submit
//! order), appends a job-state record and enqueues its id. A worker pops the
//! id, checks the session out of the slot (building it on first use) and
//! runs [`batch::execute_job`] — the same function the batch runner
//! executes — with a [`SinkObserver`](batch::SinkObserver) streaming progress into the job's
//! event log. Results are therefore **bitwise identical** to a local
//! `Session::run` of the same spec: the daemon adds scheduling and
//! caching around the flow, never arithmetic inside it (the differential
//! test at the workspace root asserts this, placement fingerprint
//! included).
//!
//! # Shutdown discipline
//!
//! `shutdown` (request or [`ServerHandle::shutdown`]) closes the queue,
//! raises every unfinished job's cancel flag, unblocks the acceptor and
//! shuts every connection socket. Workers drain the backlog (fast-failing
//! jobs that never started), every job reaches a terminal state (so
//! `wait`ers and `events` streams wake), and [`ServerHandle::join`]
//! returns only after the acceptor, every handler and every worker have
//! been joined — no leaked threads, asserted by the serve tests.

use crate::cache::{SessionCache, SessionSlot};
use crate::metrics::ServeMetrics;
use crate::protocol::{
    design_key, event_line, ok_prefix, parse_request, DesignRef, ProtoError, Request, SubmitRequest,
};
use batch::{
    execute_job, job_json, make_jobs_for, parse_objective, BatchEvent, BatchJob, BatchSink,
    CancelSet, JobReport, JobStatus, Profile,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use tdp_core::FlowPhase;

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (the bound address
    /// is on [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads executing jobs (`0` = one per hardware thread).
    pub workers: usize,
    /// Sessions kept hot in the LRU cache.
    pub cache_capacity: usize,
    /// Default event stride for submits that do not set one.
    pub default_stride: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            cache_capacity: 8,
            default_stride: 16,
        }
    }
}

/// Terminal-state-aware job phase (the report is boxed so the common
/// non-terminal states stay pointer-sized).
#[derive(Debug)]
enum JobPhase {
    Queued,
    Running,
    Finished(Box<JobReport>),
}

impl JobPhase {
    fn label(&self) -> &str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Finished(r) => r.status.label(),
        }
    }
}

/// Append-only per-job event log with blocking readers.
#[derive(Debug, Default)]
struct EventLog {
    state: Mutex<EventLogState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct EventLogState {
    lines: Vec<String>,
    closed: bool,
}

impl EventLog {
    fn push(&self, line: String) {
        let mut s = self.state.lock().expect("event log lock");
        if !s.closed {
            s.lines.push(line);
        }
        drop(s);
        self.cv.notify_all();
    }

    fn close(&self) {
        self.state.lock().expect("event log lock").closed = true;
        self.cv.notify_all();
    }

    /// Blocks until lines beyond `index` exist (returning them) or the
    /// log closes with none left (returning an empty vec).
    fn wait_from(&self, index: usize) -> (Vec<String>, bool) {
        let mut s = self.state.lock().expect("event log lock");
        loop {
            if s.lines.len() > index {
                return (s.lines[index..].to_vec(), s.closed);
            }
            if s.closed {
                return (Vec::new(), true);
            }
            s = self.cv.wait(s).expect("event log lock");
        }
    }
}

/// One submitted job and everything needed to run, watch and cancel it.
struct JobState {
    id: usize,
    job: BatchJob,
    key: u64,
    slot: Arc<SessionSlot>,
    stride: usize,
    /// Single-flag cancel set (flag index 0).
    cancel: CancelSet,
    phase: Mutex<JobPhase>,
    cv: Condvar,
    events: EventLog,
}

impl JobState {
    fn finish(&self, report: JobReport, metrics: &ServeMetrics) {
        match report.status {
            JobStatus::Done => ServeMetrics::bump(&metrics.jobs_done),
            JobStatus::Canceled => ServeMetrics::bump(&metrics.jobs_canceled),
            JobStatus::Failed(_) => ServeMetrics::bump(&metrics.jobs_failed),
        }
        self.events.push(event_line("finished", self.id, |s| {
            tdp_jsonio::field_str(s, "state", report.status.label());
            tdp_jsonio::field_raw(s, "report", &job_json(&report));
        }));
        *self.phase.lock().expect("job phase lock") = JobPhase::Finished(Box::new(report));
        self.cv.notify_all();
        self.events.close();
    }

    fn is_finished(&self) -> bool {
        matches!(
            *self.phase.lock().expect("job phase lock"),
            JobPhase::Finished(_)
        )
    }
}

/// State shared by the acceptor, handlers and workers.
struct Shared {
    cfg: ServerConfig,
    workers: usize,
    addr: SocketAddr,
    cache: SessionCache,
    metrics: ServeMetrics,
    jobs: Mutex<Vec<Arc<JobState>>>,
    queue: parx::TaskQueue<usize>,
    shutting_down: AtomicBool,
    /// Live connections by id, so shutdown can unblock their reads. A
    /// handler *must* unregister on exit — a resident daemon would
    /// otherwise leak one fd per closed connection.
    conns: Mutex<std::collections::HashMap<u64, TcpStream>>,
    next_conn: std::sync::atomic::AtomicU64,
}

impl Shared {
    fn job(&self, id: usize) -> Option<Arc<JobState>> {
        self.jobs.lock().expect("jobs lock").get(id).cloned()
    }

    /// Registers a connection for shutdown teardown; returns its
    /// registry id, or `None` if the server is already shutting down
    /// (the caller should bail).
    fn register_conn(&self, stream: &TcpStream) -> Option<u64> {
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        let mut conns = self.conns.lock().expect("conns lock");
        if let Ok(clone) = stream.try_clone() {
            conns.insert(id, clone);
        }
        // Checked under the conns lock: `initiate_shutdown` sets the
        // flag before sweeping this map, so either we see the flag here
        // or the sweep sees our entry — never neither.
        if self.shutting_down.load(Ordering::SeqCst) {
            conns.remove(&id);
            None
        } else {
            Some(id)
        }
    }

    /// Drops a finished connection's registry entry (and its fd).
    fn unregister_conn(&self, id: u64) {
        self.conns.lock().expect("conns lock").remove(&id);
    }

    fn initiate_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // No new work; workers drain what is queued (fast-failing it).
        self.queue.close();
        // Stop in-flight flows at their next observer callback.
        for job in self.jobs.lock().expect("jobs lock").iter() {
            if !job.is_finished() {
                job.cancel.cancel(0);
            }
        }
        // Unblock every handler thread's read/write...
        for conn in self.conns.lock().expect("conns lock").values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // ...and the acceptor.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server. Keep the handle: dropping it shuts the server down
/// and joins every thread.
pub struct ServerHandle {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Initiates shutdown without blocking (idempotent; also triggered
    /// by the wire `shutdown` command).
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// Blocks until the server has fully stopped: acceptor, handlers and
    /// workers all joined.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.initiate_shutdown();
        self.join_inner();
    }
}

/// The service entry point.
pub struct Server;

impl Server {
    /// Binds, spawns the worker pool and the acceptor, and returns
    /// immediately.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = parx::resolve_threads(cfg.workers);
        let shared = Arc::new(Shared {
            cache: SessionCache::new(cfg.cache_capacity),
            metrics: ServeMetrics::new(),
            jobs: Mutex::new(Vec::new()),
            queue: parx::TaskQueue::new(),
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(std::collections::HashMap::new()),
            next_conn: std::sync::atomic::AtomicU64::new(0),
            workers,
            addr,
            cfg,
        });

        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("tdp-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }

        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tdp-serve-acceptor".to_string())
                .spawn(move || {
                    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
                    for stream in listener.incoming() {
                        if shared.shutting_down.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let shared = Arc::clone(&shared);
                        if let Ok(h) = std::thread::Builder::new()
                            .name("tdp-serve-conn".to_string())
                            .spawn(move || handle_connection(&shared, stream))
                        {
                            handlers.push(h);
                        }
                    }
                    for h in handlers {
                        let _ = h.join();
                    }
                    for h in worker_handles {
                        let _ = h.join();
                    }
                })?
        };

        Ok(ServerHandle {
            shared,
            supervisor: Some(supervisor),
        })
    }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

/// Renders flow events into the job's event log.
struct LogSink<'a> {
    log: &'a EventLog,
}

impl BatchSink for LogSink<'_> {
    fn on_event(&self, event: &BatchEvent) {
        let line = match event {
            BatchEvent::JobStarted {
                job,
                case,
                objective,
            } => event_line("started", *job, |s| {
                tdp_jsonio::field_str(s, "case", case);
                tdp_jsonio::field_str(s, "objective", objective);
            }),
            BatchEvent::Phase { job, phase } => event_line("phase", *job, |s| {
                let name = match phase {
                    FlowPhase::Setup => "setup",
                    FlowPhase::GlobalPlacement => "global_placement",
                    FlowPhase::Legalization => "legalization",
                    FlowPhase::Evaluation => "evaluation",
                };
                tdp_jsonio::field_str(s, "phase", name);
            }),
            BatchEvent::Iteration {
                job,
                iter,
                hpwl,
                overflow,
            } => event_line("iteration", *job, |s| {
                tdp_jsonio::field_num(s, "iter", *iter as f64);
                tdp_jsonio::field_num(s, "hpwl", *hpwl);
                tdp_jsonio::field_num(s, "overflow", *overflow);
            }),
            BatchEvent::TimingAnalysis {
                job,
                iter,
                tns,
                wns,
            } => event_line("timing", *job, |s| {
                tdp_jsonio::field_num(s, "iter", *iter as f64);
                tdp_jsonio::field_num(s, "tns", *tns);
                tdp_jsonio::field_num(s, "wns", *wns);
            }),
            BatchEvent::Congestion {
                job,
                iter,
                peak,
                overflow,
            } => event_line("congestion", *job, |s| {
                tdp_jsonio::field_num(s, "iter", *iter as f64);
                tdp_jsonio::field_num(s, "peak", *peak);
                tdp_jsonio::field_num(s, "overflow", *overflow);
            }),
            // The terminal line is pushed by `JobState::finish` (which
            // also closes the log), not by the sink.
            BatchEvent::JobFinished { .. } => return,
        };
        self.log.push(line);
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(id) = shared.queue.pop() {
        let Some(job) = shared.job(id) else { continue };
        run_job(shared, &job);
    }
}

/// The report of a job that could not run (mirrors the batch runner's
/// failed-report shape).
fn failed_report(job: &JobState, msg: String) -> JobReport {
    JobReport {
        job: job.id,
        case: job.job.case.clone(),
        objective: job.job.spec.objective().label(),
        cells: 0,
        nets: 0,
        status: JobStatus::Failed(msg),
        iterations: 0,
        legal: false,
        metrics: None,
        congestion: None,
        placement_hash: 0,
        runtime: Default::default(),
    }
}

/// Best-effort text of a panic payload.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_job(shared: &Shared, job: &JobState) {
    if shared.shutting_down.load(Ordering::SeqCst) {
        // Drained off the closed queue: never started, fail fast so
        // waiters wake and shutdown stays prompt.
        job.finish(
            failed_report(job, "server shut down before the job started".into()),
            &shared.metrics,
        );
        return;
    }
    *job.phase.lock().expect("job phase lock") = JobPhase::Running;
    let sink = LogSink { log: &job.events };
    sink.on_event(&BatchEvent::JobStarted {
        job: job.id,
        case: job.job.case.clone(),
        objective: job.job.spec.objective().label(),
    });
    // One catch_unwind around *everything* that can assert — design
    // generation and session construction included (inline params are
    // only type-checked at submit, so the generator may still reject
    // them with a panic). A panic must fail the job, never the worker:
    // a dead worker would strand the queue and every waiter.
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        match job.slot.session(&job.job.params) {
            Err(msg) => failed_report(job, msg),
            Ok(session_mutex) => match session_mutex.lock() {
                // A panic inside an earlier job poisoned this design's
                // session; fail cleanly rather than run on half-updated
                // state (same policy as the batch runner's group
                // poisoning).
                Err(_) => failed_report(
                    job,
                    "session poisoned by a previous job's panic on this design".into(),
                ),
                Ok(mut session) => execute_job(
                    job.id,
                    &job.job,
                    &mut session,
                    &sink,
                    &job.cancel,
                    0,
                    job.stride,
                ),
            },
        }
    }));
    let report = attempt.unwrap_or_else(|payload| {
        failed_report(job, format!("job panicked: {}", panic_text(payload)))
    });
    job.finish(report, &shared.metrics);
}

// ---------------------------------------------------------------------
// Connection side
// ---------------------------------------------------------------------

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Per-connection ECO state: one open [`eco::EcoSession`] plus the
/// cache pin that keeps its design resident for the session's lifetime.
struct EcoConn {
    key: u64,
    /// Keeps the slot alive even if the cache entry were dropped; the
    /// pin makes that impossible, but the `Arc` costs nothing and makes
    /// the session's independence from cache internals explicit.
    _slot: Arc<SessionSlot>,
    eco: eco::EcoSession,
}

/// Releases an ECO session's cache pin and folds its cumulative stats
/// into the server metrics. Shared by `eco_close` and the disconnect
/// path, so a vanished client can never leak a pin.
fn close_eco(shared: &Shared, conn: EcoConn) -> tdp_core::EcoStats {
    let stats = conn.eco.stats();
    shared.metrics.fold_eco(&stats);
    shared.cache.unpin(conn.key);
    stats
}

/// The connection's open ECO session, or the uniform "open one first"
/// protocol error.
fn eco_session(conn: &mut Option<EcoConn>) -> Result<&mut EcoConn, ProtoError> {
    conn.as_mut()
        .ok_or_else(|| ProtoError::new("no eco session open on this connection (eco_open first)"))
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let Some(conn_id) = shared.register_conn(&stream) else {
        let _ = stream.shutdown(Shutdown::Both);
        return;
    };
    serve_requests(shared, stream);
    shared.unregister_conn(conn_id);
}

/// The per-connection request loop; returns on EOF, socket teardown or
/// a failed write.
fn serve_requests(shared: &Shared, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    let mut eco_conn: Option<EcoConn> = None;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF or torn-down socket
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        ServeMetrics::bump(&shared.metrics.requests);
        let outcome = match parse_request(line.trim_end()) {
            Err(e) => write_line(&mut writer, &e.to_response()),
            Ok(request) => dispatch(shared, request, &mut writer, &mut eco_conn),
        };
        if outcome.is_err() {
            break; // client went away mid-response
        }
    }
    // Disconnect auto-close: release the pin and account the session's
    // stats even when the client never sent `eco_close`.
    if let Some(conn) = eco_conn.take() {
        close_eco(shared, conn);
    }
}

/// Handles one request; `Err` means the socket died and the connection
/// loop should end. `eco_conn` is the connection's ECO session slot —
/// the `eco_*` verbs operate on it and every other verb ignores it.
fn dispatch(
    shared: &Shared,
    request: Request,
    writer: &mut TcpStream,
    eco_conn: &mut Option<EcoConn>,
) -> std::io::Result<()> {
    match request {
        Request::Submit(req) => match handle_submit(shared, &req) {
            Err(e) => write_line(writer, &e.to_response()),
            Ok(response) => write_line(writer, &response),
        },
        Request::Status { job } => match shared.job(job) {
            None => write_line(writer, &unknown_job(job)),
            Some(j) => write_line(writer, &render_status("status", &j)),
        },
        Request::Wait { job } => match shared.job(job) {
            None => write_line(writer, &unknown_job(job)),
            Some(j) => {
                let mut phase = j.phase.lock().expect("job phase lock");
                while !matches!(*phase, JobPhase::Finished(_)) {
                    phase = j.cv.wait(phase).expect("job phase lock");
                }
                drop(phase);
                write_line(writer, &render_status("wait", &j))
            }
        },
        Request::Events { job, from } => match shared.job(job) {
            None => write_line(writer, &unknown_job(job)),
            Some(j) => {
                ServeMetrics::bump(&shared.metrics.event_streams);
                let mut index = from;
                let mut sent = 0usize;
                loop {
                    let (lines, closed) = j.events.wait_from(index);
                    if lines.is_empty() && closed {
                        if sent == 0 {
                            // `from` pointed at or past the terminal
                            // `finished` line, so the stream replayed
                            // nothing. Emit an explicit terminator —
                            // a silent empty stream would deadlock a
                            // client waiting for a terminal event.
                            let state = j.phase.lock().expect("job phase lock").label().to_string();
                            let end = event_line("end", j.id, |s| {
                                tdp_jsonio::field_str(s, "state", &state);
                            });
                            return write_line(writer, &end);
                        }
                        return Ok(());
                    }
                    index += lines.len();
                    sent += lines.len();
                    for l in &lines {
                        write_line(writer, l)?;
                    }
                }
            }
        },
        Request::Cancel { job } => match shared.job(job) {
            None => write_line(writer, &unknown_job(job)),
            Some(j) => {
                j.cancel.cancel(0);
                let mut s = ok_prefix("cancel");
                tdp_jsonio::field_num(&mut s, "job", job as f64);
                s.push('}');
                write_line(writer, &s)
            }
        },
        Request::Metrics => {
            // One pass over the job table: scheduler gauges plus the
            // congestion aggregates of every finished report (the
            // routability counterpart of done/canceled/failed).
            let (total, queued, running, congestion) = {
                let jobs = shared.jobs.lock().expect("jobs lock");
                let mut queued = 0usize;
                let mut running = 0usize;
                let mut congestion = (0usize, 0.0f64, 0.0f64); // (jobs, Σ overflow, peak max)
                for j in jobs.iter() {
                    match &*j.phase.lock().expect("job phase lock") {
                        JobPhase::Queued => queued += 1,
                        JobPhase::Running => running += 1,
                        JobPhase::Finished(report) => {
                            if let Some(c) = report.congestion {
                                congestion.0 += 1;
                                congestion.1 += c.overflow;
                                congestion.2 = congestion.2.max(c.peak);
                            }
                        }
                    }
                }
                (jobs.len(), queued, running, congestion)
            };
            let mut s = ok_prefix("metrics");
            shared.metrics.render(
                &mut s,
                &crate::metrics::Gauges {
                    workers: shared.workers,
                    jobs_total: total,
                    jobs_queued: queued,
                    jobs_running: running,
                    cache_entries: shared.cache.len(),
                    cache_capacity: shared.cache.capacity(),
                },
            );
            tdp_jsonio::field_num(&mut s, "congestion_jobs", congestion.0 as f64);
            tdp_jsonio::field_num(&mut s, "congestion_overflow_sum", congestion.1);
            tdp_jsonio::field_num(&mut s, "congestion_peak_max", congestion.2);
            s.push('}');
            write_line(writer, &s)
        }
        Request::Shutdown => {
            let mut s = ok_prefix("shutdown");
            tdp_jsonio::field_num(
                &mut s,
                "jobs",
                shared.jobs.lock().expect("jobs lock").len() as f64,
            );
            s.push('}');
            let result = write_line(writer, &s);
            shared.initiate_shutdown();
            result
        }
        Request::EcoOpen { design } => match handle_eco_open(shared, eco_conn, &design) {
            Err(e) => write_line(writer, &e.to_response()),
            Ok(response) => write_line(writer, &response),
        },
        Request::EcoApply { deltas } => {
            let response = eco_session(eco_conn).and_then(|conn| {
                let batch = eco::delta_batch_from_json(conn.eco.design(), &deltas)
                    .map_err(ProtoError::new)?;
                let summary = conn
                    .eco
                    .apply(&batch)
                    .map_err(|e| ProtoError::new(e.to_string()))?;
                ServeMetrics::bump(&shared.metrics.eco_applies);
                let mut s = ok_prefix("eco_apply");
                tdp_jsonio::field_num(&mut s, "moved_cells", summary.moved_cells.len() as f64);
                tdp_jsonio::field_num(&mut s, "dirty_nets", summary.dirty_nets.len() as f64);
                tdp_jsonio::field_num(&mut s, "checkpoint", conn.eco.checkpoint() as f64);
                s.push('}');
                Ok(s)
            });
            match response {
                Err(e) => write_line(writer, &e.to_response()),
                Ok(s) => write_line(writer, &s),
            }
        }
        Request::EcoQuery { full, paths } => {
            let response = eco_session(eco_conn).map(|conn| {
                match full {
                    Some(true) => conn.eco.reanalyze(eco::EcoMode::Full),
                    Some(false) => conn.eco.reanalyze(eco::EcoMode::Incremental),
                    None => {}
                }
                ServeMetrics::bump(&shared.metrics.eco_queries);
                let mut s = ok_prefix("eco_query");
                tdp_jsonio::field_raw(&mut s, "result", &conn.eco.query(paths).to_json().encode());
                s.push('}');
                s
            });
            match response {
                Err(e) => write_line(writer, &e.to_response()),
                Ok(s) => write_line(writer, &s),
            }
        }
        Request::EcoRevert { to } => {
            let response = eco_session(eco_conn).and_then(|conn| {
                match to {
                    Some(cp) => conn.eco.revert_to(cp),
                    None => conn.eco.revert(),
                }
                .map_err(|e| ProtoError::new(e.to_string()))?;
                ServeMetrics::bump(&shared.metrics.eco_reverts);
                let mut s = ok_prefix("eco_revert");
                tdp_jsonio::field_num(&mut s, "checkpoint", conn.eco.checkpoint() as f64);
                s.push('}');
                Ok(s)
            });
            match response {
                Err(e) => write_line(writer, &e.to_response()),
                Ok(s) => write_line(writer, &s),
            }
        }
        Request::EcoClose => match eco_conn.take() {
            None => write_line(
                writer,
                &ProtoError::new("no eco session open on this connection (eco_open first)")
                    .to_response(),
            ),
            Some(conn) => {
                let stats = close_eco(shared, conn);
                let mut s = ok_prefix("eco_close");
                tdp_jsonio::field_num(&mut s, "queries", stats.queries as f64);
                tdp_jsonio::field_num(&mut s, "cells_moved", stats.cells_moved as f64);
                tdp_jsonio::field_num(&mut s, "dirty_nets", stats.dirty_nets as f64);
                tdp_jsonio::field_num(&mut s, "incremental_ns", stats.incremental_ns as f64);
                tdp_jsonio::field_num(&mut s, "full_ns", stats.full_ns as f64);
                s.push('}');
                write_line(writer, &s)
            }
        },
    }
}

fn handle_eco_open(
    shared: &Shared,
    eco_conn: &mut Option<EcoConn>,
    design: &DesignRef,
) -> Result<String, ProtoError> {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return Err(ProtoError::new("server is shutting down"));
    }
    if eco_conn.is_some() {
        return Err(ProtoError::new(
            "an eco session is already open on this connection (eco_close first)",
        ));
    }
    let (_name, params) = resolve_design(design)?;
    let key = design_key(&params);
    let (slot, hit, evictions) = shared.cache.checkout_pinned(key).map_err(ProtoError::new)?;
    if hit {
        ServeMetrics::bump(&shared.metrics.cache_hits);
    } else {
        ServeMetrics::bump(&shared.metrics.cache_misses);
    }
    for _ in 0..evictions {
        ServeMetrics::bump(&shared.metrics.cache_evictions);
    }
    let opened = slot
        .session(&params)
        .and_then(|session_mutex| {
            session_mutex.lock().map_err(|_| {
                "session poisoned by a previous job's panic on this design".to_string()
            })
        })
        .map(|session| {
            // Server-side ECO sessions analyze single-threaded: answers
            // must be bitwise reproducible regardless of daemon sizing.
            eco::EcoSession::open(&session, eco::rc_params_for(&params), 1)
        });
    let eco = match opened {
        Ok(eco) => eco,
        Err(msg) => {
            // The open failed after the pin was taken; release it or
            // the broken design would block eviction forever.
            shared.cache.unpin(key);
            return Err(ProtoError::new(msg));
        }
    };
    ServeMetrics::bump(&shared.metrics.eco_opens);
    let mut s = ok_prefix("eco_open");
    tdp_jsonio::field_str(&mut s, "design", &format!("{key:#018x}"));
    tdp_jsonio::field_bool(&mut s, "cached", hit);
    tdp_jsonio::field_num(&mut s, "cells", eco.design().num_cells() as f64);
    tdp_jsonio::field_num(&mut s, "nets", eco.design().num_nets() as f64);
    tdp_jsonio::field_num(&mut s, "clock_period", eco.design().sdc().clock_period);
    s.push('}');
    *eco_conn = Some(EcoConn {
        key,
        _slot: slot,
        eco,
    });
    Ok(s)
}

fn unknown_job(job: usize) -> String {
    ProtoError::new(format!("unknown job {job}")).to_response()
}

fn render_status(cmd: &str, job: &JobState) -> String {
    let phase = job.phase.lock().expect("job phase lock");
    let mut s = ok_prefix(cmd);
    tdp_jsonio::field_num(&mut s, "job", job.id as f64);
    tdp_jsonio::field_str(&mut s, "state", phase.label());
    tdp_jsonio::field_str(&mut s, "design", &format!("{:#018x}", job.key));
    if let JobPhase::Finished(report) = &*phase {
        tdp_jsonio::field_raw(&mut s, "report", &job_json(report));
    }
    s.push('}');
    s
}

/// Resolves a design reference to (name, generator parameters); shared
/// by `submit` and `eco_open`.
fn resolve_design(design: &DesignRef) -> Result<(String, benchgen::CircuitParams), ProtoError> {
    match design {
        DesignRef::Case(name) => {
            let case = benchgen::case_by_name(name).ok_or_else(|| {
                let known: Vec<&str> = benchgen::full_suite().iter().map(|c| c.name).collect();
                ProtoError::new(format!(
                    "unknown case {name:?} (available: {})",
                    known.join(", ")
                ))
            })?;
            Ok((case.name.to_string(), case.params))
        }
        DesignRef::Inline(params) => Ok((params.name.clone(), params.clone())),
    }
}

fn handle_submit(shared: &Shared, req: &SubmitRequest) -> Result<String, ProtoError> {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return Err(ProtoError::new("server is shutting down"));
    }
    let (name, params) = resolve_design(&req.design)?;
    let objective = parse_objective(&req.objective)
        .map_err(|e| ProtoError::new(e.to_string()))?
        .ok_or_else(|| {
            ProtoError::new(
                "objective \"all\" is not valid on the wire; submit one job per objective",
            )
        })?;
    let profile = Profile::parse(&req.profile).map_err(|e| ProtoError::new(e.to_string()))?;
    let mut jobs = make_jobs_for(&name, &params, Some(&objective), profile, &req.overrides)
        .map_err(|e| ProtoError::new(e.to_string()))?;
    debug_assert_eq!(jobs.len(), 1, "one objective yields one job");
    let job = jobs.remove(0);

    let key = design_key(&params);
    let (slot, hit, evictions) = shared.cache.checkout(key).map_err(ProtoError::new)?;
    if hit {
        ServeMetrics::bump(&shared.metrics.cache_hits);
    } else {
        ServeMetrics::bump(&shared.metrics.cache_misses);
    }
    for _ in 0..evictions {
        ServeMetrics::bump(&shared.metrics.cache_evictions);
    }

    let stride = req.stride.unwrap_or(shared.cfg.default_stride).max(1);
    let state = {
        let mut jobs_vec = shared.jobs.lock().expect("jobs lock");
        let id = jobs_vec.len();
        let state = Arc::new(JobState {
            id,
            job,
            key,
            slot,
            stride,
            cancel: CancelSet::new(1),
            phase: Mutex::new(JobPhase::Queued),
            cv: Condvar::new(),
            events: EventLog::default(),
        });
        jobs_vec.push(Arc::clone(&state));
        state
    };
    ServeMetrics::bump(&shared.metrics.submits);
    if !shared.queue.push(state.id) {
        // Shutdown raced the submit; resolve the job terminally so
        // status/wait/events still behave.
        state.finish(
            failed_report(&state, "server shut down before the job started".into()),
            &shared.metrics,
        );
    }
    let mut s = ok_prefix("submit");
    tdp_jsonio::field_num(&mut s, "job", state.id as f64);
    tdp_jsonio::field_str(&mut s, "design", &format!("{key:#018x}"));
    tdp_jsonio::field_bool(&mut s, "cached", hit);
    s.push('}');
    Ok(s)
}

//! The LRU session cache — what makes the daemon cheaper than a CLI.
//!
//! A [`Session`] front-loads the expensive,
//! placement-independent work for one design: timing-graph construction
//! and the RC skeleton. The batch runner amortizes that cost across the
//! jobs of one *plan*; this cache amortizes it across *connections and
//! across time* — any request for a design the daemon has served before
//! (keyed by [`design_key`](crate::protocol::design_key), so `case`
//! references and bit-identical inline parameters share entries) reuses
//! the cached session, paying the STA setup exactly once per design per
//! residency.
//!
//! Construction is lazy and deduplicated: a submit only *reserves* a
//! slot; the worker that first executes a job for the design builds the
//! session inside the slot's [`OnceLock`], and concurrent workers
//! needing the same design block on that initialization instead of
//! building twice. Eviction is LRU by submit order and drops the cache's
//! `Arc` only — jobs already holding the slot keep it alive until they
//! finish, so eviction can never yank a session out from under a run.

use benchgen::CircuitParams;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use tdp_core::Session;

/// A lazily-built, shareable session slot.
///
/// The inner result is `Err` when session construction failed (e.g. a
/// cyclic design); every job for that design then fails with the same
/// message instead of retrying a build that cannot succeed.
#[derive(Debug, Default)]
pub struct SessionSlot {
    cell: OnceLock<Result<Mutex<Session>, String>>,
}

impl SessionSlot {
    /// The design's session, built on first use (concurrent callers
    /// block until the one build finishes).
    ///
    /// # Errors
    ///
    /// Returns the (cached) construction error message if the design
    /// cannot produce a session.
    pub fn session(&self, params: &CircuitParams) -> Result<&Mutex<Session>, String> {
        self.cell
            .get_or_init(|| {
                let (design, pads) = benchgen::generate(params);
                Session::builder(design, pads)
                    .build()
                    .map(Mutex::new)
                    .map_err(|e| format!("session construction failed: {e}"))
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// Whether the slot has been initialized (for tests/metrics).
    pub fn is_built(&self) -> bool {
        self.cell.get().is_some()
    }
}

struct Entry {
    key: u64,
    slot: Arc<SessionSlot>,
    /// Last-touched stamp; smallest = least recently used.
    stamp: u64,
    /// Open ECO sessions holding this design resident. A pinned entry
    /// is never an eviction candidate: an interactive client's
    /// sub-millisecond queries must not race a cold rebuild.
    pins: u64,
}

/// LRU map from design key to session slot.
pub struct SessionCache {
    capacity: usize,
    clock: AtomicU64,
    entries: Mutex<Vec<Entry>>,
}

impl SessionCache {
    /// An empty cache holding at most `capacity` sessions (minimum 1 —
    /// a zero-capacity cache would deadlock the "build once" promise).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Capacity in sessions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached designs right now.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the slot for `key`, recording whether it was already
    /// present (`true` = hit). On a miss beyond capacity the
    /// least-recently-used **unpinned** entry is evicted (second
    /// return: evictions performed, 0 or 1).
    ///
    /// # Errors
    ///
    /// Returns a message when the cache is at capacity and every entry
    /// is pinned by an open ECO session — eviction is denied rather
    /// than yanking a resident design out from under a live editor.
    pub fn checkout(&self, key: u64) -> Result<(Arc<SessionSlot>, bool, usize), String> {
        self.checkout_impl(key, false)
    }

    /// Like [`SessionCache::checkout`], but additionally pins the entry
    /// for the lifetime of an ECO session. Balance with
    /// [`SessionCache::unpin`].
    ///
    /// # Errors
    ///
    /// Same eviction denial as [`SessionCache::checkout`].
    pub fn checkout_pinned(&self, key: u64) -> Result<(Arc<SessionSlot>, bool, usize), String> {
        self.checkout_impl(key, true)
    }

    fn checkout_impl(
        &self,
        key: u64,
        pin: bool,
    ) -> Result<(Arc<SessionSlot>, bool, usize), String> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().expect("cache lock");
        if let Some(e) = entries.iter_mut().find(|e| e.key == key) {
            e.stamp = stamp;
            if pin {
                e.pins += 1;
            }
            return Ok((Arc::clone(&e.slot), true, 0));
        }
        let mut evicted = 0;
        if entries.len() >= self.capacity {
            let lru = entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.pins == 0)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i);
            let Some(lru) = lru else {
                return Err(format!(
                    "session cache is full ({} sessions) and every session is pinned by an \
                     open eco session",
                    self.capacity
                ));
            };
            entries.swap_remove(lru);
            evicted = 1;
        }
        let slot = Arc::new(SessionSlot::default());
        entries.push(Entry {
            key,
            slot: Arc::clone(&slot),
            stamp,
            pins: u64::from(pin),
        });
        Ok((slot, false, evicted))
    }

    /// Releases one pin on `key` (no-op for unknown keys — a pinned
    /// entry cannot have been evicted, so an unknown key means the pin
    /// was already released).
    pub fn unpin(&self, key: u64) {
        let mut entries = self.entries.lock().expect("cache lock");
        if let Some(e) = entries.iter_mut().find(|e| e.key == key) {
            e.pins = e.pins.saturating_sub(1);
        }
    }

    /// Open pins on `key` (0 for unknown keys).
    pub fn pins(&self, key: u64) -> u64 {
        self.entries
            .lock()
            .expect("cache lock")
            .iter()
            .find(|e| e.key == key)
            .map_or(0, |e| e.pins)
    }
}

impl std::fmt::Debug for SessionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_hits_misses_and_evicts_lru() {
        let cache = SessionCache::new(2);
        let (a1, hit, ev) = cache.checkout(1).unwrap();
        assert!(!hit);
        assert_eq!(ev, 0);
        let (_b, hit, ev) = cache.checkout(2).unwrap();
        assert!(!hit);
        assert_eq!(ev, 0);
        // Touch 1 so 2 becomes the LRU.
        let (a2, hit, _) = cache.checkout(1).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&a1, &a2), "hits return the same slot");
        // A third key evicts key 2 (the LRU), not key 1.
        let (_c, hit, ev) = cache.checkout(3).unwrap();
        assert!(!hit);
        assert_eq!(ev, 1);
        let (_a3, hit, _) = cache.checkout(1).unwrap();
        assert!(hit, "recently used key must survive eviction");
        let (_b2, hit, _) = cache.checkout(2).unwrap();
        assert!(!hit, "evicted key is a miss again");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn pinned_entries_are_never_evicted() {
        let cache = SessionCache::new(2);
        cache.checkout_pinned(1).unwrap();
        let (_b, _, _) = cache.checkout(2).unwrap();
        assert_eq!(cache.pins(1), 1);
        assert_eq!(cache.pins(2), 0);
        // Key 1 is the LRU but pinned: key 2 is evicted instead.
        let (_c, hit, ev) = cache.checkout(3).unwrap();
        assert!(!hit);
        assert_eq!(ev, 1);
        let (_a, hit, _) = cache.checkout(1).unwrap();
        assert!(hit, "pinned entry survives eviction pressure");
        // Pin the whole cache: a miss at capacity is now denied.
        cache.checkout_pinned(3).unwrap();
        let err = cache.checkout(4).expect_err("all entries pinned");
        assert!(err.contains("pinned"), "error explains the denial: {err}");
        // Releasing a pin re-enables eviction.
        cache.unpin(3);
        assert_eq!(cache.pins(3), 0);
        cache.checkout(4).expect("unpinned entry can be evicted");
        // Double-unpin saturates instead of underflowing.
        cache.unpin(3);
        cache.unpin(99);
        assert_eq!(cache.pins(1), 1);
    }

    #[test]
    fn slots_build_lazily_and_cache_failures() {
        let slot = SessionSlot::default();
        assert!(!slot.is_built());
        let params = CircuitParams::small("lazy", 5);
        let m = slot.session(&params).expect("small design builds");
        assert!(slot.is_built());
        // Second call returns the same session, no rebuild.
        let m2 = slot.session(&params).unwrap();
        assert!(std::ptr::eq(m, m2));
    }
}

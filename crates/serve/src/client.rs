//! A line-protocol client for the daemon — the library behind
//! `tdp-client`, and what the serve tests drive the server with.

use crate::protocol::SubmitRequest;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};
use tdp_jsonio::JsonValue;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, EOF mid-response).
    Io(std::io::Error),
    /// The server's bytes were not a valid response line.
    Protocol(String),
    /// The server answered `{"ok":false,...}`.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection to a `tdp-serve` daemon.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr`, retrying for up to `retry` (pass
    /// `Duration::ZERO` for a single attempt). Retrying covers the
    /// daemon-still-booting window in scripts that start the server in
    /// the background.
    ///
    /// # Errors
    ///
    /// Returns the last connect error once the deadline passes.
    pub fn connect(addr: impl ToSocketAddrs + Copy, retry: Duration) -> std::io::Result<Self> {
        let deadline = Instant::now() + retry;
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let reader = BufReader::new(stream.try_clone()?);
                    return Ok(Self {
                        writer: stream,
                        reader,
                    });
                }
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// Sends one raw request line and returns the parsed response
    /// object; `{"ok":false}` responses become [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn roundtrip(&mut self, request: &str) -> Result<JsonValue, ClientError> {
        self.send(request)?;
        let doc = self.read_value()?;
        check_ok(doc)
    }

    fn send(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn read_value(&mut self) -> Result<JsonValue, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        tdp_jsonio::parse(line.trim_end())
            .map_err(|e| ClientError::Protocol(format!("{e} in {line:?}")))
    }

    /// Submits a job; returns its id.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn submit(&mut self, req: &SubmitRequest) -> Result<usize, ClientError> {
        let doc = self.roundtrip(&req.encode())?;
        doc.get("job")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| ClientError::Protocol("submit response lacks \"job\"".into()))
    }

    /// Non-blocking state poll.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn status(&mut self, job: usize) -> Result<JsonValue, ClientError> {
        self.roundtrip(&format!("{{\"cmd\":\"status\",\"job\":{job}}}"))
    }

    /// Blocks server-side until the job is terminal; returns the final
    /// status object (with its `"report"`).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn wait(&mut self, job: usize) -> Result<JsonValue, ClientError> {
        self.roundtrip(&format!("{{\"cmd\":\"wait\",\"job\":{job}}}"))
    }

    /// Requests cancellation (takes effect at the job's next observer
    /// callback).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn cancel(&mut self, job: usize) -> Result<JsonValue, ClientError> {
        self.roundtrip(&format!("{{\"cmd\":\"cancel\",\"job\":{job}}}"))
    }

    /// Server counters.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn metrics(&mut self) -> Result<JsonValue, ClientError> {
        self.roundtrip("{\"cmd\":\"metrics\"}")
    }

    /// Server counters in Prometheus text exposition format — the
    /// scrape body, ready to serve to a scraper or print.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let doc = self.roundtrip("{\"cmd\":\"metrics_text\"}")?;
        doc.get("text")
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("metrics_text response lacks \"text\"".into()))
    }

    /// Dumps the server's resident span ring as a Chrome trace
    /// document (the `"trace"` value — load it in Perfetto or
    /// `chrome://tracing` after writing it to a file).
    ///
    /// # Errors
    ///
    /// See [`ClientError`]; notably [`ClientError::Server`] when the
    /// daemon runs with `--trace-ring 0`.
    pub fn trace(&mut self) -> Result<JsonValue, ClientError> {
        self.roundtrip("{\"cmd\":\"trace_dump\"}")
    }

    /// Asks the server to stop; returns its acknowledgement.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn shutdown(&mut self) -> Result<JsonValue, ClientError> {
        self.roundtrip("{\"cmd\":\"shutdown\"}")
    }

    /// Opens an ECO session on this connection, pinning the named
    /// case's session resident.
    ///
    /// # Errors
    ///
    /// See [`ClientError`]; notably [`ClientError::Server`] when the
    /// cache is fully pinned or another ECO session is already open
    /// here.
    pub fn eco_open(&mut self, case: &str) -> Result<JsonValue, ClientError> {
        let mut s = String::from("{\"cmd\":\"eco_open\"");
        tdp_jsonio::field_str(&mut s, "case", case);
        s.push('}');
        self.roundtrip(&s)
    }

    /// Applies a delta batch (raw JSON array in the `eco` wire grammar)
    /// to the connection's ECO session.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn eco_apply(&mut self, deltas: &str) -> Result<JsonValue, ClientError> {
        let mut s = String::from("{\"cmd\":\"eco_apply\"");
        tdp_jsonio::field_raw(&mut s, "deltas", deltas);
        s.push('}');
        self.roundtrip(&s)
    }

    /// Queries the ECO session; `mode` (`"incremental"`/`"full"`)
    /// forces a re-analysis before the readout, `None` reads the
    /// current state.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn eco_query(
        &mut self,
        mode: Option<&str>,
        paths: usize,
    ) -> Result<JsonValue, ClientError> {
        let mut s = String::from("{\"cmd\":\"eco_query\"");
        if let Some(mode) = mode {
            tdp_jsonio::field_str(&mut s, "mode", mode);
        }
        tdp_jsonio::field_num(&mut s, "paths", paths as f64);
        s.push('}');
        self.roundtrip(&s)
    }

    /// Rolls the ECO session back to checkpoint `to` (or one batch).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn eco_revert(&mut self, to: Option<usize>) -> Result<JsonValue, ClientError> {
        let mut s = String::from("{\"cmd\":\"eco_revert\"");
        if let Some(to) = to {
            tdp_jsonio::field_num(&mut s, "to", to as f64);
        }
        s.push('}');
        self.roundtrip(&s)
    }

    /// Closes the ECO session, releasing its cache pin; the response
    /// carries the session's cumulative stats.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn eco_close(&mut self) -> Result<JsonValue, ClientError> {
        self.roundtrip("{\"cmd\":\"eco_close\"}")
    }

    /// Streams the job's events from index `from`, invoking `on_event`
    /// per event object, until a terminal line (returned): `finished`
    /// (full replay/live stream) or `end` (when `from` already points
    /// past the job's terminal event — both carry `"state"`).
    ///
    /// # Errors
    ///
    /// See [`ClientError`]; a stream that ends without a terminal event
    /// (server shut down mid-stream) is an I/O error.
    pub fn events(
        &mut self,
        job: usize,
        from: usize,
        mut on_event: impl FnMut(&JsonValue),
    ) -> Result<JsonValue, ClientError> {
        self.send(&format!(
            "{{\"cmd\":\"events\",\"job\":{job},\"from\":{from}}}"
        ))?;
        loop {
            let doc = self.read_value()?;
            if doc.get("ok").is_some() {
                // An error response instead of a stream (unknown job).
                return check_ok(doc).map(|_| unreachable!("ok responses have no event stream"));
            }
            let kind = doc
                .get("event")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| ClientError::Protocol("event line lacks \"event\"".into()))?
                .to_string();
            on_event(&doc);
            if kind == "finished" || kind == "end" {
                return Ok(doc);
            }
        }
    }
}

fn check_ok(doc: JsonValue) -> Result<JsonValue, ClientError> {
    match doc.get("ok").and_then(JsonValue::as_bool) {
        Some(true) => Ok(doc),
        Some(false) => {
            let msg = doc
                .get("error")
                .and_then(JsonValue::as_str)
                .unwrap_or("unspecified server error");
            let at = match (
                doc.get("line").and_then(JsonValue::as_usize),
                doc.get("col").and_then(JsonValue::as_usize),
            ) {
                (Some(l), Some(c)) => format!(" (at line {l} col {c})"),
                _ => String::new(),
            };
            Err(ClientError::Server(format!("{msg}{at}")))
        }
        None => Err(ClientError::Protocol(format!(
            "response lacks \"ok\": {}",
            doc.encode()
        ))),
    }
}

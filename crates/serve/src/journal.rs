//! The durable job journal: a JSONL write-ahead log that lets the
//! daemon survive restarts.
//!
//! Every `submit`, job state transition, event line and final
//! [`JobReport`] is appended as one single-line JSON record to
//! `<dir>/journal.jsonl`. Appends on *transition boundaries* (`submit`,
//! `running`, `finished`) are fsync'd; event lines ride along unsynced
//! and are made durable by the next transition's sync on the same file —
//! so a crash can lose at most the unsynced event suffix of jobs that
//! had not finished, never a terminal report.
//!
//! On startup the server replays the journal ([`Journal::open`] returns
//! the decoded records): finished jobs are restored with their reports
//! and complete event logs, unfinished jobs are re-enqueued (or marked
//! failed-by-restart under `--no-replay`). Because job execution is
//! deterministic, a re-run regenerates the *identical* event stream and
//! report, so a client resuming `events --from` across the restart sees
//! no gaps and no duplicates.
//!
//! # Record grammar
//!
//! ```text
//! {"rec":"submit","job":N,"name":CASE,"params":{…},"objective":O,
//!  "profile":P,"overrides":{…},"stride":K,"key":"0x…"}
//! {"rec":"state","job":N,"state":"running"}
//! {"rec":"event","job":N,"seq":I,"line":{…event object…}}
//! {"rec":"finished","job":N,"report":{…journal report form…}}
//! ```
//!
//! The `finished` record's report uses a *full-fidelity* serialization
//! ([`report_to_json`]/[`report_from_json`]), not the wire's
//! [`batch::job_json`] rendering: durations travel as integer
//! nanoseconds (exact in a JSON number below 2⁵³ ns ≈ 104 days) and
//! every [`RuntimeBreakdown`] field is present, so a restored report's
//! `job_json` rendering is **byte-identical** to the one the daemon
//! served before the crash — asserted by this module's tests and the
//! kill-and-restart integration test.
//!
//! # Crash consistency
//!
//! Replay stops at the first line that is torn (no trailing newline) or
//! unparseable and truncates the file there — standard WAL recovery.
//! Everything before that point is intact: records are appended with a
//! single `write_all` each, and a `finished` record's fsync flushes all
//! earlier writes on the same descriptor, so a parseable `finished`
//! record guarantees the job's complete event history precedes it.

use batch::{JobReport, JobStatus};
use benchgen::CircuitParams;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use tdp_core::{CongestionReport, EcoStats, Metrics, RuntimeBreakdown};
use tdp_jsonio::{
    field_bool, field_hex, field_num, field_raw, field_str, parse_hex_u64, JsonValue,
};

use crate::protocol::{params_from_json, params_to_json};

/// One decoded journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A job was accepted (carries everything needed to rebuild it).
    Submit(Box<SubmitRecord>),
    /// A job changed scheduler state (currently only `"running"`).
    State {
        /// Job id.
        job: usize,
        /// State label.
        state: String,
    },
    /// One event-log line (re-encoded from the embedded object).
    Event {
        /// Job id.
        job: usize,
        /// The line's index in the job's event log.
        seq: usize,
        /// The event line, re-encoded.
        line: String,
    },
    /// A job reached a terminal state with this report.
    Finished {
        /// Job id.
        job: usize,
        /// The full-fidelity report.
        report: Box<JobReport>,
    },
}

/// The replayable payload of one `submit`: enough to rebuild the exact
/// [`batch::BatchJob`] through [`batch::make_jobs_for`].
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRecord {
    /// Job id.
    pub job: usize,
    /// Resolved case name (inline designs use their `params.name`).
    pub name: String,
    /// Full resolved generator parameters.
    pub params: CircuitParams,
    /// Objective name as submitted (wire vocabulary).
    pub objective: String,
    /// Profile name as submitted.
    pub profile: String,
    /// `key=value` overrides (string form, as the wire normalizes them).
    pub overrides: Vec<(String, String)>,
    /// Resolved event stride.
    pub stride: usize,
    /// The design's content key.
    pub key: u64,
}

/// The append half of the journal: a shared handle the submit path,
/// workers and finish path write through. Reads for replay happen once
/// in [`Journal::open`]; reads for compacted jobs re-scan the file via
/// [`read_compacted`].
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
    appends: AtomicU64,
}

impl Journal {
    /// Opens (creating the directory and file as needed) the journal at
    /// `dir/journal.jsonl`, replays the existing records, truncates any
    /// torn/corrupt tail, and positions the file for appending.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory or opening the file.
    pub fn open(dir: &Path) -> std::io::Result<(Journal, Vec<Record>)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("journal.jsonl");
        let mut records = Vec::new();
        // Bytes of the clean prefix: complete (newline-terminated),
        // parseable records. Everything past it is a crash artifact and
        // is truncated before appending resumes.
        let mut clean = 0u64;
        if let Ok(text) = std::fs::read_to_string(&path) {
            for line in text.split_inclusive('\n') {
                if !line.ends_with('\n') {
                    break; // torn tail: the crash interrupted this write
                }
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    clean += line.len() as u64;
                    continue;
                }
                let Some(rec) = tdp_jsonio::parse(trimmed)
                    .ok()
                    .and_then(|v| decode_record(&v).ok())
                else {
                    break; // corrupt record: recover the prefix only
                };
                records.push(rec);
                clean += line.len() as u64;
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)?;
        file.set_len(clean)?;
        file.seek(SeekFrom::Start(clean))?;
        Ok((
            Journal {
                path,
                file: Mutex::new(file),
                appends: AtomicU64::new(0),
            },
            records,
        ))
    }

    /// The journal file's path (compacted reads re-scan it).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended by this instance (the `journal_appends` metric).
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Appends one record line; `sync` forces it (and everything before
    /// it) to disk — true on transition boundaries, false for event
    /// lines.
    ///
    /// # Errors
    ///
    /// The underlying write or sync error.
    pub fn append(&self, record: &str, sync: bool) -> std::io::Result<()> {
        let _span = tdp_trace::span("journal.append", "journal");
        let mut file = self.file.lock().expect("journal lock");
        file.write_all(record.as_bytes())?;
        file.write_all(b"\n")?;
        if sync {
            let _fsync = tdp_trace::span("journal.fsync", "journal");
            file.sync_data()?;
        }
        self.appends.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// Renders a `submit` record line.
pub fn submit_record(r: &SubmitRecord) -> String {
    let mut s = String::from("{\"rec\":\"submit\"");
    field_num(&mut s, "job", r.job as f64);
    field_str(&mut s, "name", &r.name);
    field_raw(&mut s, "params", &params_to_json(&r.params).encode());
    field_str(&mut s, "objective", &r.objective);
    field_str(&mut s, "profile", &r.profile);
    let mut o = String::from("{");
    for (i, (k, v)) in r.overrides.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        tdp_jsonio::push_escaped(&mut o, k);
        o.push(':');
        tdp_jsonio::push_escaped(&mut o, v);
    }
    o.push('}');
    field_raw(&mut s, "overrides", &o);
    field_num(&mut s, "stride", r.stride as f64);
    field_hex(&mut s, "key", r.key);
    s.push('}');
    s
}

/// Renders a `state` record line.
pub fn state_record(job: usize, state: &str) -> String {
    let mut s = String::from("{\"rec\":\"state\"");
    field_num(&mut s, "job", job as f64);
    field_str(&mut s, "state", state);
    s.push('}');
    s
}

/// Renders an `event` record line; `line` must be one already-rendered
/// event object.
pub fn event_record(job: usize, seq: usize, line: &str) -> String {
    let mut s = String::from("{\"rec\":\"event\"");
    field_num(&mut s, "job", job as f64);
    field_num(&mut s, "seq", seq as f64);
    field_raw(&mut s, "line", line);
    s.push('}');
    s
}

/// Renders a `finished` record line with the full-fidelity report.
pub fn finished_record(job: usize, report: &JobReport) -> String {
    let mut s = String::from("{\"rec\":\"finished\"");
    field_num(&mut s, "job", job as f64);
    field_raw(&mut s, "report", &report_to_json(report));
    s.push('}');
    s
}

/// Decodes one parsed journal line.
///
/// # Errors
///
/// A message naming the missing/ill-typed field.
pub fn decode_record(v: &JsonValue) -> Result<Record, String> {
    let rec = v
        .get("rec")
        .and_then(JsonValue::as_str)
        .ok_or("record lacks \"rec\"")?;
    let job = v
        .get("job")
        .and_then(JsonValue::as_usize)
        .ok_or("record lacks \"job\"")?;
    match rec {
        "submit" => {
            let name = req_str(v, "name")?.to_string();
            let params = params_from_json(v.get("params").ok_or("submit lacks \"params\"")?)
                .map_err(|e| e.to_string())?;
            let objective = req_str(v, "objective")?.to_string();
            let profile = req_str(v, "profile")?.to_string();
            let mut overrides = Vec::new();
            if let Some(members) = v.get("overrides").and_then(JsonValue::as_object) {
                for (k, val) in members {
                    let text = val
                        .as_str()
                        .ok_or_else(|| format!("override {k:?} must be a string"))?;
                    overrides.push((k.clone(), text.to_string()));
                }
            }
            let stride = v
                .get("stride")
                .and_then(JsonValue::as_usize)
                .ok_or("submit lacks \"stride\"")?;
            let key = v
                .get("key")
                .and_then(JsonValue::as_str)
                .and_then(parse_hex_u64)
                .ok_or("submit lacks hex \"key\"")?;
            Ok(Record::Submit(Box::new(SubmitRecord {
                job,
                name,
                params,
                objective,
                profile,
                overrides,
                stride,
                key,
            })))
        }
        "state" => Ok(Record::State {
            job,
            state: req_str(v, "state")?.to_string(),
        }),
        "event" => Ok(Record::Event {
            job,
            seq: v
                .get("seq")
                .and_then(JsonValue::as_usize)
                .ok_or("event lacks \"seq\"")?,
            // Re-encoding through the shared emitter is a fixpoint for
            // lines this workspace produced, so the restored line is
            // byte-identical to the one originally streamed.
            line: v.get("line").ok_or("event lacks \"line\"")?.encode(),
        }),
        "finished" => Ok(Record::Finished {
            job,
            report: Box::new(report_from_json(
                v.get("report").ok_or("finished lacks \"report\"")?,
            )?),
        }),
        other => Err(format!("unknown record kind {other:?}")),
    }
}

/// Everything the journal holds about one compacted job: its complete
/// event log (deduplicated across restart re-runs) and terminal report.
#[derive(Debug, Default)]
pub struct CompactedJob {
    /// Event lines in seq order.
    pub events: Vec<String>,
    /// The terminal report (always present for a job the server
    /// compacted — only journaled-finished jobs are compaction
    /// candidates).
    pub report: Option<Box<JobReport>>,
}

/// Re-reads one job's events and report from the journal file — the
/// serving path for `status`/`wait`/`events` on a compacted job.
///
/// # Errors
///
/// I/O errors reading the file (decode errors terminate the scan like
/// replay does, tolerating a torn tail).
pub fn read_compacted(path: &Path, job: usize) -> std::io::Result<CompactedJob> {
    let text = std::fs::read_to_string(path)?;
    let mut out = CompactedJob::default();
    for line in text.split_inclusive('\n') {
        if !line.ends_with('\n') {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let Some(rec) = tdp_jsonio::parse(trimmed)
            .ok()
            .and_then(|v| decode_record(&v).ok())
        else {
            break;
        };
        match rec {
            Record::Event {
                job: j,
                seq,
                line: l,
                // Same dedup rule as replay: a pre-crash attempt's partial
                // stream is a prefix of the re-run's (identical by
                // determinism); keep the first copy of each seq.
            } if j == job && seq == out.events.len() => out.events.push(l),
            Record::Finished { job: j, report } if j == job => out.report = Some(report),
            _ => {}
        }
    }
    Ok(out)
}

fn req_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("record lacks string {key:?}"))
}

// ---------------------------------------------------------------------
// Full-fidelity report serialization
// ---------------------------------------------------------------------

/// Renders a report for the journal. Unlike the wire's
/// [`batch::job_json`] (which drops setup time, grid dimensions and the
/// unaccounted-gradient bucket, and renders durations as seconds), this
/// form carries **every** field, durations as exact integer nanoseconds
/// and hashes as hex strings, so [`report_from_json`] reconstructs a
/// [`JobReport`] that is value-identical — and whose `job_json`
/// rendering is byte-identical — to the original.
pub fn report_to_json(r: &JobReport) -> String {
    let mut s = String::from("{\"job\":");
    tdp_jsonio::push_num(&mut s, r.job as f64);
    field_str(&mut s, "case", &r.case);
    field_str(&mut s, "objective", &r.objective);
    field_num(&mut s, "cells", r.cells as f64);
    field_num(&mut s, "nets", r.nets as f64);
    field_str(&mut s, "status", r.status.label());
    if let JobStatus::Failed(msg) = &r.status {
        field_str(&mut s, "error", msg);
    }
    field_num(&mut s, "iterations", r.iterations as f64);
    field_bool(&mut s, "legal", r.legal);
    if let Some(m) = r.metrics {
        let mut o = String::from("{\"tns\":");
        tdp_jsonio::push_num(&mut o, m.tns);
        field_num(&mut o, "wns", m.wns);
        field_num(&mut o, "hpwl", m.hpwl);
        field_num(&mut o, "failing_endpoints", m.failing_endpoints as f64);
        field_num(&mut o, "total_endpoints", m.total_endpoints as f64);
        o.push('}');
        field_raw(&mut s, "metrics", &o);
    }
    if let Some(c) = r.congestion {
        let mut o = String::from("{\"bins_x\":");
        tdp_jsonio::push_num(&mut o, c.bins_x as f64);
        field_num(&mut o, "bins_y", c.bins_y as f64);
        field_num(&mut o, "peak", c.peak);
        field_num(&mut o, "average", c.average);
        field_num(&mut o, "overflow", c.overflow);
        field_num(&mut o, "overflow_bins", c.overflow_bins as f64);
        field_hex(&mut o, "map_hash", c.map_hash);
        o.push('}');
        field_raw(&mut s, "congestion", &o);
    }
    field_hex(&mut s, "placement_hash", r.placement_hash);
    let rt = &r.runtime;
    let mut o = String::from("{\"io_ns\":");
    let ns = |d: Duration| d.as_nanos().min(u128::from(u64::MAX)) as f64;
    tdp_jsonio::push_num(&mut o, ns(rt.io));
    field_num(&mut o, "sta_ns", ns(rt.timing_analysis));
    field_num(&mut o, "weighting_ns", ns(rt.weighting));
    field_num(&mut o, "legalization_ns", ns(rt.legalization));
    field_num(&mut o, "congestion_ns", ns(rt.congestion));
    field_num(&mut o, "gradient_ns", ns(rt.gradient_and_others));
    field_num(&mut o, "total_ns", ns(rt.total));
    field_num(&mut o, "threads", rt.threads as f64);
    field_num(&mut o, "rc_refreshes", rt.rc.refreshes as f64);
    field_num(&mut o, "rc_nets_refreshed", rt.rc.nets_refreshed as f64);
    field_num(&mut o, "rc_scratch_reuses", rt.rc.scratch_reuses as f64);
    field_num(&mut o, "rc_slab_bytes", rt.rc.slab_bytes as f64);
    field_num(&mut o, "eco_queries", rt.eco.queries as f64);
    field_num(&mut o, "eco_cells_moved", rt.eco.cells_moved as f64);
    field_num(&mut o, "eco_dirty_nets", rt.eco.dirty_nets as f64);
    field_num(&mut o, "eco_incremental_ns", rt.eco.incremental_ns as f64);
    field_num(&mut o, "eco_full_ns", rt.eco.full_ns as f64);
    o.push('}');
    field_raw(&mut s, "runtime", &o);
    s.push('}');
    s
}

/// Parses a journal-form report back into a [`JobReport`] — the inverse
/// of [`report_to_json`].
///
/// # Errors
///
/// A message naming the missing/ill-typed field.
pub fn report_from_json(v: &JsonValue) -> Result<JobReport, String> {
    let num = |key: &str| {
        v.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("report lacks number {key:?}"))
    };
    let status = match req_str(v, "status")? {
        "done" => JobStatus::Done,
        "canceled" => JobStatus::Canceled,
        "failed" => JobStatus::Failed(
            v.get("error")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown failure")
                .to_string(),
        ),
        other => return Err(format!("unknown status {other:?}")),
    };
    let metrics = match v.get("metrics") {
        None => None,
        Some(m) => {
            let f = |key: &str| {
                m.get(key)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("metrics lacks {key:?}"))
            };
            Some(Metrics {
                tns: f("tns")?,
                wns: f("wns")?,
                hpwl: f("hpwl")?,
                failing_endpoints: f("failing_endpoints")? as usize,
                total_endpoints: f("total_endpoints")? as usize,
            })
        }
    };
    let congestion = match v.get("congestion") {
        None => None,
        Some(c) => {
            let f = |key: &str| {
                c.get(key)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("congestion lacks {key:?}"))
            };
            Some(CongestionReport {
                bins_x: f("bins_x")? as usize,
                bins_y: f("bins_y")? as usize,
                peak: f("peak")?,
                average: f("average")?,
                overflow: f("overflow")?,
                overflow_bins: f("overflow_bins")? as usize,
                map_hash: c
                    .get("map_hash")
                    .and_then(JsonValue::as_str)
                    .and_then(parse_hex_u64)
                    .ok_or("congestion lacks hex \"map_hash\"")?,
            })
        }
    };
    let rt = v.get("runtime").ok_or("report lacks \"runtime\"")?;
    let rtf = |key: &str| {
        rt.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("runtime lacks {key:?}"))
    };
    let dur = |key: &str| rtf(key).map(|ns| Duration::from_nanos(ns as u64));
    let runtime = RuntimeBreakdown {
        io: dur("io_ns")?,
        timing_analysis: dur("sta_ns")?,
        weighting: dur("weighting_ns")?,
        legalization: dur("legalization_ns")?,
        congestion: dur("congestion_ns")?,
        gradient_and_others: dur("gradient_ns")?,
        total: dur("total_ns")?,
        threads: rtf("threads")? as usize,
        rc: sta::RcOpStats {
            refreshes: rtf("rc_refreshes")? as u64,
            nets_refreshed: rtf("rc_nets_refreshed")? as u64,
            scratch_reuses: rtf("rc_scratch_reuses")? as u64,
            slab_bytes: rtf("rc_slab_bytes")? as u64,
        },
        eco: EcoStats {
            queries: rtf("eco_queries")? as u64,
            cells_moved: rtf("eco_cells_moved")? as u64,
            dirty_nets: rtf("eco_dirty_nets")? as u64,
            incremental_ns: rtf("eco_incremental_ns")? as u64,
            full_ns: rtf("eco_full_ns")? as u64,
        },
    };
    Ok(JobReport {
        job: num("job")? as usize,
        case: req_str(v, "case")?.to_string(),
        objective: req_str(v, "objective")?.to_string(),
        cells: num("cells")? as usize,
        nets: num("nets")? as usize,
        status,
        iterations: num("iterations")? as usize,
        legal: v
            .get("legal")
            .and_then(JsonValue::as_bool)
            .ok_or("report lacks bool \"legal\"")?,
        metrics,
        congestion,
        placement_hash: v
            .get("placement_hash")
            .and_then(JsonValue::as_str)
            .and_then(parse_hex_u64)
            .ok_or("report lacks hex \"placement_hash\"")?,
        runtime,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use batch::job_json;

    fn sample_report() -> JobReport {
        JobReport {
            job: 3,
            case: "sb18".into(),
            objective: "Efficient-TDP (ours)".into(),
            cells: 1200,
            nets: 1100,
            status: JobStatus::Done,
            iterations: 57,
            legal: true,
            metrics: Some(Metrics {
                tns: -123.456789012345,
                wns: -7.000000000000013,
                hpwl: 1.5339e6,
                failing_endpoints: 9,
                total_endpoints: 200,
            }),
            congestion: Some(CongestionReport {
                bins_x: 32,
                bins_y: 24,
                peak: 1.2499999999999998,
                average: 0.333_333_333_333_333_3,
                overflow: 2.75,
                overflow_bins: 4,
                map_hash: 0xfeed_f00d_dead_beef,
            }),
            placement_hash: 0x0123_4567_89ab_cdef,
            runtime: RuntimeBreakdown {
                io: Duration::from_nanos(1_234_567),
                timing_analysis: Duration::from_nanos(987_654_321),
                weighting: Duration::from_nanos(42),
                legalization: Duration::from_nanos(7_000_000_001),
                congestion: Duration::from_nanos(3),
                gradient_and_others: Duration::from_nanos(555),
                total: Duration::from_nanos(8_001_222_333),
                threads: 4,
                rc: sta::RcOpStats {
                    refreshes: 12,
                    nets_refreshed: 13_200,
                    scratch_reuses: 11,
                    slab_bytes: 1 << 20,
                },
                eco: EcoStats::default(),
            },
        }
    }

    #[test]
    fn report_round_trip_is_value_and_rendering_exact() {
        for report in [
            sample_report(),
            JobReport {
                status: JobStatus::Failed("flow panicked: die too full".into()),
                metrics: None,
                congestion: None,
                legal: false,
                ..sample_report()
            },
            JobReport {
                status: JobStatus::Canceled,
                ..sample_report()
            },
        ] {
            let encoded = report_to_json(&report);
            let parsed = tdp_jsonio::parse(&encoded).expect("journal form parses");
            let back = report_from_json(&parsed).expect("journal form decodes");
            assert_eq!(back, report, "struct round-trip");
            // The wire rendering — what clients compare bitwise — must
            // be byte-identical after a journal round-trip.
            assert_eq!(job_json(&back), job_json(&report));
            // And the journal form itself is a fixpoint.
            assert_eq!(report_to_json(&back), encoded);
        }
    }

    #[test]
    fn records_round_trip_through_encode_and_decode() {
        let sub = SubmitRecord {
            job: 5,
            name: "sb18".into(),
            params: CircuitParams::small("sb18", 7),
            objective: "efficient-tdp".into(),
            profile: "quick".into(),
            overrides: vec![("seed".into(), "9".into())],
            stride: 4,
            key: 0xabcd_ef01_2345_6789,
        };
        for (line, want) in [
            (submit_record(&sub), Record::Submit(Box::new(sub.clone()))),
            (
                state_record(5, "running"),
                Record::State {
                    job: 5,
                    state: "running".into(),
                },
            ),
            (
                event_record(5, 2, "{\"event\":\"phase\",\"job\":5,\"phase\":\"setup\"}"),
                Record::Event {
                    job: 5,
                    seq: 2,
                    line: "{\"event\":\"phase\",\"job\":5,\"phase\":\"setup\"}".into(),
                },
            ),
            (
                finished_record(5, &sample_report()),
                Record::Finished {
                    job: 5,
                    report: Box::new(sample_report()),
                },
            ),
        ] {
            let v = tdp_jsonio::parse(&line).expect("record parses");
            assert_eq!(decode_record(&v).expect("record decodes"), want, "{line}");
        }
    }

    #[test]
    fn open_replays_clean_records_and_truncates_torn_tail() {
        let dir = std::env::temp_dir().join(format!(
            "tdp-journal-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();

        // First open on an empty dir: no records.
        let (journal, records) = Journal::open(&dir).unwrap();
        assert!(records.is_empty());
        journal.append(&state_record(0, "running"), true).unwrap();
        journal
            .append(
                &event_record(0, 0, "{\"event\":\"started\",\"job\":0}"),
                false,
            )
            .unwrap();
        assert_eq!(journal.appends(), 2);
        drop(journal);

        // Simulate a crash mid-append: a torn (newline-less) tail.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join("journal.jsonl"))
                .unwrap();
            f.write_all(b"{\"rec\":\"state\",\"job\":1,\"sta").unwrap();
        }
        let (journal, records) = Journal::open(&dir).unwrap();
        assert_eq!(records.len(), 2, "clean prefix survives, torn tail dropped");
        assert_eq!(
            records[0],
            Record::State {
                job: 0,
                state: "running".into()
            }
        );
        // Appending after recovery produces a parseable file again.
        journal.append(&state_record(2, "running"), true).unwrap();
        drop(journal);
        let (_, records) = Journal::open(&dir).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(
            records[2],
            Record::State {
                job: 2,
                state: "running".into()
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_compacted_collects_one_jobs_events_and_report() {
        let dir = std::env::temp_dir().join(format!(
            "tdp-journal-compact-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let (journal, _) = Journal::open(&dir).unwrap();
        journal
            .append(&event_record(0, 0, "{\"event\":\"a\",\"job\":0}"), false)
            .unwrap();
        journal
            .append(&event_record(1, 0, "{\"event\":\"b\",\"job\":1}"), false)
            .unwrap();
        journal
            .append(&event_record(0, 1, "{\"event\":\"c\",\"job\":0}"), false)
            .unwrap();
        // A duplicate seq from a pre-crash attempt is kept-first.
        journal
            .append(&event_record(0, 1, "{\"event\":\"c\",\"job\":0}"), false)
            .unwrap();
        journal
            .append(&finished_record(0, &sample_report()), true)
            .unwrap();
        let compacted = read_compacted(journal.path(), 0).unwrap();
        assert_eq!(
            compacted.events,
            vec![
                "{\"event\":\"a\",\"job\":0}".to_string(),
                "{\"event\":\"c\",\"job\":0}".to_string(),
            ]
        );
        assert_eq!(
            job_json(&compacted.report.expect("report present")),
            job_json(&sample_report())
        );
        let other = read_compacted(journal.path(), 1).unwrap();
        assert_eq!(other.events.len(), 1);
        assert!(other.report.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! `tdp-serve`: the placement flow as a resident service.
//!
//! Every earlier entry point in this workspace — the table harnesses,
//! `tdp-batch`, the examples — is a run-to-completion process: it pays
//! binary startup, design generation and the full STA setup on every
//! invocation, then exits and throws the warm state away. This crate
//! fronts the same execution core with a long-lived daemon, the way
//! production query engines front theirs:
//!
//! * [`server`] — the [`Server`]: a std-only TCP listener (no external
//!   deps), a worker pool on [`parx::TaskQueue`], and per-connection
//!   handler threads speaking newline-delimited JSON.
//! * [`protocol`] — the wire grammar: `submit` / `status` / `wait` /
//!   `events` / `cancel` / `metrics` / `shutdown`, plus the canonical
//!   [`protocol::design_key`] content hash.
//! * [`cache`] — the LRU [`SessionCache`]: repeat requests for one
//!   design (by catalog name or bit-identical inline parameters, across
//!   connections and across time) reuse one built
//!   [`Session`](tdp_core::Session), so the timing graph and RC skeleton
//!   are constructed exactly once per design per residency — the batch
//!   runner's amortization, promoted from per-plan to per-daemon.
//! * [`metrics`] — counters behind the `metrics` request, plus the
//!   Prometheus text renderer behind `metrics_text`.
//! * [`journal`] — the durable JSONL write-ahead log: with `--journal`
//!   every submit, state transition, event line and final report is
//!   appended (fsync'd on transition boundaries), the daemon replays it
//!   on startup, and `--retain` compacts old finished jobs out of
//!   memory, re-serving them from the journal byte-identically.
//! * [`client`] — the [`Client`] library used by `tdp-client`, the CI
//!   smoke job and the differential tests.
//!
//! # The differential guarantee
//!
//! A job submitted to the daemon runs through [`batch::make_jobs_for`]
//! (spec construction) and [`batch::execute_job`] (execution) — the
//! exact functions a local run uses. The daemon adds scheduling, caching
//! and streaming *around* the flow, never arithmetic inside it, so a
//! daemon-served result is bitwise identical — metrics and placement
//! fingerprint — to the same spec run through a local
//! [`Session`](tdp_core::Session). The workspace test
//! `tests/serve_differential.rs` asserts this end to end over the wire.

pub mod cache;
pub mod client;
pub mod journal;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use cache::{SessionCache, SessionSlot};
pub use client::{Client, ClientError};
pub use journal::Journal;
pub use metrics::{Gauges, ServeMetrics};
pub use protocol::{design_key, DesignRef, ProtoError, Request, SubmitRequest};
pub use server::{Server, ServerConfig, ServerHandle};

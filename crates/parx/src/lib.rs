//! Deterministic data-parallel kernels on `std::thread::scope`.
//!
//! The container this workspace builds in has no crates.io access, so the
//! hot loops cannot pull in rayon. This crate provides the small slice of
//! rayon's functionality they need, built on scoped threads, with one
//! extra guarantee rayon does not make: **every kernel produces the same
//! bits for every thread count**, including 1. That is what lets the flow
//! expose a `threads` knob while keeping its results reproducible, and
//! what the serial-vs-parallel equivalence tests assert.
//!
//! Determinism comes from two rules:
//!
//! * work is partitioned into chunks whose boundaries depend only on the
//!   problem size (never on the thread count or on scheduling), and
//! * every combining step (gradient reduction, value sums) happens in
//!   chunk order on one thread.
//!
//! The building blocks:
//!
//! * [`resolve_threads`] — maps the user-facing knob (0 = auto) to a
//!   concrete worker count.
//! * [`par_for`] — parallel loop over disjoint index chunks; the closure
//!   gets a chunk range and may write anywhere it can prove disjoint.
//! * [`par_map_reduce`] — chunked map with an ordered, serial reduction;
//!   the reduction order is chunk order, independent of thread count.
//! * [`UnsafeSlice`] — a `Sync` view over `&mut [T]` for kernels whose
//!   writes are disjoint by construction but not expressible as
//!   `chunks_mut` (e.g. scattered pin indices within a timing level).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves the user-facing thread knob: `0` means "use the machine",
/// anything else is taken literally (capped at 64 to bound scratch
/// memory on absurd inputs).
pub fn resolve_threads(requested: usize) -> usize {
    let n = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    n.clamp(1, 64)
}

/// Chunk size for `n` items: big enough to amortize dispatch, small
/// enough to load-balance. Depends only on `n`, never on threads — this
/// is what keeps chunk-ordered reductions thread-count invariant.
pub fn chunk_size(n: usize, min_chunk: usize) -> usize {
    // Aim for ~4 chunks per worker on a typical 8-way machine without
    // consulting the actual worker count.
    (n / 32).max(min_chunk).max(1)
}

/// Problems shorter than this many chunks run inline: scoped-thread
/// spawn/join costs tens of microseconds per call, which dwarfs the
/// kernel itself on small inputs (there is no persistent pool). Chunk
/// boundaries are unchanged, so results are identical either way.
const MIN_PARALLEL_CHUNKS: usize = 4;

/// Runs `body` over `0..n` split into chunks of [`chunk_size`], using up
/// to `threads` workers. `body` receives a half-open index range; calls
/// may run concurrently, so writes must target disjoint data per index.
///
/// With `threads <= 1`, or when the whole problem fits one chunk, runs
/// inline with zero thread overhead.
pub fn par_for<F>(threads: usize, n: usize, min_chunk: usize, body: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    par_for_inner(threads, n, min_chunk, None, body)
}

/// [`par_for`] with a kernel name for the tracing layer: each worker's
/// participation in the dispatch is recorded as one `name` span on a
/// stable per-worker lane ([`tdp_trace::worker_lane`]), and the caller's
/// own participation as a span on its lane. Chunk boundaries, claiming
/// and results are exactly [`par_for`]'s — tracing observes the dispatch
/// and never shapes it. With tracing disabled the extra cost is one
/// relaxed atomic load.
pub fn par_for_named<F>(threads: usize, n: usize, min_chunk: usize, name: &'static str, body: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    par_for_inner(threads, n, min_chunk, Some(name), body)
}

/// Names the worker lane for worker `index` of a dispatch from `caller`.
fn adopt_worker_lane(caller: u32, index: usize) {
    tdp_trace::adopt_lane(
        tdp_trace::worker_lane(caller, index),
        &format!("parx.worker{index}"),
    );
}

/// The caller's lane id, read only when a named kernel will trace (the
/// disabled path must not touch thread-locals).
fn trace_caller(name: Option<&'static str>) -> Option<u32> {
    match name {
        Some(_) if tdp_trace::enabled() => Some(tdp_trace::current_lane()),
        _ => None,
    }
}

fn kernel_span(name: Option<&'static str>) -> tdp_trace::SpanGuard {
    match name {
        Some(name) => tdp_trace::span(name, "parx"),
        None => tdp_trace::SpanGuard::disarmed(),
    }
}

fn par_for_inner<F>(threads: usize, n: usize, min_chunk: usize, name: Option<&'static str>, body: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let chunk = chunk_size(n, min_chunk);
    let num_chunks = n.div_ceil(chunk);
    let workers = threads.min(num_chunks);
    if workers <= 1 || num_chunks < MIN_PARALLEL_CHUNKS {
        let _span = kernel_span(name);
        body(0..n);
        return;
    }
    let caller = trace_caller(name);
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let next = &next;
        let body = &body;
        for w in 1..workers {
            s.spawn(move || {
                if let Some(caller) = caller {
                    adopt_worker_lane(caller, w);
                }
                let _span = kernel_span(name);
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= num_chunks {
                        break;
                    }
                    let lo = c * chunk;
                    body(lo..(lo + chunk).min(n));
                }
            });
        }
        let _span = kernel_span(name);
        loop {
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= num_chunks {
                break;
            }
            let lo = c * chunk;
            body(lo..(lo + chunk).min(n));
        }
    });
}

/// Chunked map + ordered reduce: `map` produces one accumulator per chunk
/// (chunks may be mapped concurrently), then the accumulators are folded
/// left-to-right in chunk order on the calling thread. The result is
/// bit-identical for every thread count because both the chunk boundaries
/// and the fold order are thread-independent.
pub fn par_map_reduce<T, M, R>(threads: usize, n: usize, min_chunk: usize, map: M, reduce: R)
where
    T: Send,
    M: Fn(std::ops::Range<usize>) -> T + Sync,
    R: FnMut(T),
{
    par_map_reduce_inner(threads, n, min_chunk, None, map, reduce)
}

/// [`par_map_reduce`] with a kernel name for the tracing layer — same
/// span placement as [`par_for_named`] (one span per worker's
/// participation, on stable worker lanes; the chunk-ordered fold runs
/// inside the caller's span). Chunk boundaries and the fold order are
/// exactly [`par_map_reduce`]'s.
pub fn par_map_reduce_named<T, M, R>(
    threads: usize,
    n: usize,
    min_chunk: usize,
    name: &'static str,
    map: M,
    reduce: R,
) where
    T: Send,
    M: Fn(std::ops::Range<usize>) -> T + Sync,
    R: FnMut(T),
{
    par_map_reduce_inner(threads, n, min_chunk, Some(name), map, reduce)
}

fn par_map_reduce_inner<T, M, R>(
    threads: usize,
    n: usize,
    min_chunk: usize,
    name: Option<&'static str>,
    map: M,
    mut reduce: R,
) where
    T: Send,
    M: Fn(std::ops::Range<usize>) -> T + Sync,
    R: FnMut(T),
{
    if n == 0 {
        return;
    }
    let chunk = chunk_size(n, min_chunk);
    let num_chunks = n.div_ceil(chunk);
    let workers = threads.min(num_chunks);
    if workers <= 1 || num_chunks < MIN_PARALLEL_CHUNKS {
        let _span = kernel_span(name);
        for c in 0..num_chunks {
            let lo = c * chunk;
            reduce(map(lo..(lo + chunk).min(n)));
        }
        return;
    }
    let _span = kernel_span(name);
    let caller = trace_caller(name);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(num_chunks);
    slots.resize_with(num_chunks, || None);
    {
        let slots = UnsafeSlice::new(&mut slots);
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let slots = &slots;
            let next = &next;
            let map = &map;
            for w in 1..workers {
                s.spawn(move || {
                    if let Some(caller) = caller {
                        adopt_worker_lane(caller, w);
                    }
                    let _span = kernel_span(name);
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= num_chunks {
                            break;
                        }
                        let lo = c * chunk;
                        // SAFETY: each chunk index is claimed exactly once.
                        unsafe { slots.write(c, Some(map(lo..(lo + chunk).min(n)))) };
                    }
                });
            }
            loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= num_chunks {
                    break;
                }
                let lo = c * chunk;
                // SAFETY: each chunk index is claimed exactly once.
                unsafe { slots.write(c, Some(map(lo..(lo + chunk).min(n)))) };
            }
        });
    }
    for slot in &mut slots {
        reduce(slot.take().expect("every chunk was mapped"));
    }
}

/// Dynamic work queue over `0..n` items: up to `threads` workers claim
/// item indices from a shared atomic counter and run `body` on each.
///
/// Unlike [`par_for`], every item is its own unit of work and there is no
/// inline-below-a-threshold heuristic: with `threads >= 2` and `n >= 2`
/// the items genuinely run concurrently. This is the sharding primitive
/// for coarse-grained jobs (whole placement flows, design groups) whose
/// per-item cost dwarfs the spawn/join overhead, where even a two-item
/// queue is worth parallelizing.
///
/// `body` must make each item's work independent of every other item's;
/// the *execution order* of items is scheduling-dependent, so determinism
/// of the overall result requires item results to be keyed by index, not
/// by completion order.
pub fn par_queue<F>(threads: usize, n: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    if n == 0 {
        return;
    }
    let workers = resolve_threads(threads.max(1)).min(n);
    if workers <= 1 {
        for i in 0..n {
            body(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let work = |next: &AtomicUsize| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        body(i);
    };
    std::thread::scope(|s| {
        for _ in 1..workers {
            s.spawn(|| work(&next));
        }
        work(&next);
    });
}

/// A closeable blocking work queue for long-lived worker pools.
///
/// [`par_queue`] shards a *fixed* batch of `n` items and joins when they
/// drain — the right shape for one-shot batch runs, the wrong one for a
/// resident service that accepts work for as long as it lives. A
/// `TaskQueue` is the open-ended complement: any thread pushes tasks at
/// any time, worker threads block in [`TaskQueue::pop`] until a task (or
/// shutdown) arrives, and [`TaskQueue::close`] wakes every worker so a
/// pool can be joined without leaking threads.
///
/// Semantics:
///
/// * `push` returns `false` once the queue is closed (the task is
///   dropped, not enqueued);
/// * `pop` returns tasks in FIFO order; after `close`, remaining tasks
///   are still handed out, then every `pop` returns `None`;
/// * any number of producers and consumers may run concurrently.
#[derive(Debug)]
pub struct TaskQueue<T> {
    state: std::sync::Mutex<TaskQueueState<T>>,
    ready: std::sync::Condvar,
}

#[derive(Debug)]
struct TaskQueueState<T> {
    tasks: std::collections::VecDeque<T>,
    closed: bool,
}

impl<T> Default for TaskQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TaskQueue<T> {
    /// An empty, open queue.
    pub fn new() -> Self {
        Self {
            state: std::sync::Mutex::new(TaskQueueState {
                tasks: std::collections::VecDeque::new(),
                closed: false,
            }),
            ready: std::sync::Condvar::new(),
        }
    }

    /// Enqueues one task; returns `false` (dropping the task) if the
    /// queue is closed.
    pub fn push(&self, task: T) -> bool {
        let mut s = self.state.lock().expect("task queue lock");
        if s.closed {
            return false;
        }
        s.tasks.push_back(task);
        drop(s);
        self.ready.notify_one();
        true
    }

    /// Blocks until a task is available (FIFO) or the queue is closed
    /// and drained, then returns `Some(task)` / `None` respectively.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("task queue lock");
        loop {
            if let Some(task) = s.tasks.pop_front() {
                return Some(task);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).expect("task queue lock");
        }
    }

    /// Closes the queue: pending tasks still drain, further pushes are
    /// refused, and blocked (plus future) `pop`s return `None` once the
    /// backlog is gone. Idempotent.
    pub fn close(&self) {
        self.state.lock().expect("task queue lock").closed = true;
        self.ready.notify_all();
    }

    /// Number of tasks currently queued (racy by nature; for metrics).
    pub fn len(&self) -> usize {
        self.state.lock().expect("task queue lock").tasks.len()
    }

    /// Whether no tasks are queued right now (racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A `Sync` view over a mutable slice for provably disjoint concurrent
/// writes (each index written by at most one thread per parallel phase).
///
/// This is the standard scatter-write escape hatch: the borrow checker
/// cannot see that a timing level touches each pin once, so the kernel
/// asserts it instead.
pub struct UnsafeSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: callers uphold write-disjointness (documented on `write`).
unsafe impl<T: Send> Sync for UnsafeSlice<'_, T> {}
unsafe impl<T: Send> Send for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wraps a mutable slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    ///
    /// Within one parallel phase, no two threads may write the same
    /// index, and nobody may read an index another thread writes.
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        // SAFETY: bounds checked above; disjointness per the contract.
        unsafe { *self.ptr.add(index) = value };
    }

    /// Reads the value at `index`.
    ///
    /// # Safety
    ///
    /// Within one parallel phase, no thread may write this index. (The
    /// level-synchronized kernels read only indices finalized by earlier
    /// phases, separated by a barrier.)
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(index < self.len);
        // SAFETY: bounds checked above; no concurrent writer per contract.
        unsafe { *self.ptr.add(index) }
    }

    /// Reborrows `start..start + len` as a mutable subslice — the
    /// arena-refresh escape hatch: a kernel that owns a contiguous,
    /// CSR-delimited segment of a shared slab (one net's nodes, one
    /// row's bins) gets an ordinary `&mut [T]` for it instead of
    /// element-wise [`UnsafeSlice::write`] calls.
    ///
    /// # Safety
    ///
    /// The range must be in bounds, and within one parallel phase no two
    /// subslices handed out may overlap, nor may any overlapping index be
    /// touched through [`UnsafeSlice::read`] / [`UnsafeSlice::write`].
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &'a mut [T] {
        debug_assert!(start.checked_add(len).is_some_and(|end| end <= self.len));
        // SAFETY: bounds checked above; disjointness per the contract.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_threads_handles_auto_and_caps() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(10_000), 64);
    }

    #[test]
    fn par_for_covers_every_index_once() {
        for threads in [1, 2, 7] {
            let n = 10_000;
            let mut hits = vec![0u8; n];
            {
                let view = UnsafeSlice::new(&mut hits);
                par_for(threads, n, 16, |range| {
                    for i in range {
                        // SAFETY: ranges are disjoint chunks of 0..n.
                        unsafe { view.write(i, 1) };
                    }
                });
            }
            assert!(hits.iter().all(|&h| h == 1), "threads={threads}");
        }
    }

    #[test]
    fn par_map_reduce_is_thread_count_invariant() {
        // Sum of f64 values whose order matters at the bit level: the
        // reduction must produce identical bits for every thread count.
        let n = 50_000;
        let vals: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761) % 1000) as f64 * 1e-3)
            .collect();
        let sum_with = |threads: usize| {
            let mut total = 0.0f64;
            par_map_reduce(
                threads,
                n,
                64,
                |range| range.map(|i| vals[i]).sum::<f64>(),
                |partial: f64| total += partial,
            );
            total
        };
        let s1 = sum_with(1);
        for threads in [2, 3, 8] {
            assert_eq!(s1.to_bits(), sum_with(threads).to_bits());
        }
    }

    #[test]
    fn par_for_zero_items_is_a_noop() {
        par_for(4, 0, 1, |_| panic!("no chunks expected"));
        par_map_reduce(4, 0, 1, |_| 1u32, |_| panic!("no chunks expected"));
    }

    #[test]
    fn par_queue_runs_every_item_exactly_once() {
        use std::sync::atomic::AtomicU32;
        for threads in [1, 2, 5] {
            // Small n on purpose: par_queue must parallelize even a
            // two-item queue instead of falling back to inline execution.
            for n in [0usize, 1, 2, 3, 17] {
                let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
                par_queue(threads, n, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "threads={threads} n={n}"
                );
            }
        }
    }

    #[test]
    fn task_queue_feeds_a_pool_and_drains_on_close() {
        use std::sync::atomic::AtomicU32;
        let queue = TaskQueue::new();
        let done = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    while let Some(task) = queue.pop() {
                        let _: usize = task;
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for i in 0..100 {
                assert!(queue.push(i), "queue open: push must succeed");
            }
            // Close with tasks possibly still queued: workers must drain
            // the backlog, then exit (the scope join proves no leak).
            queue.close();
        });
        assert_eq!(done.load(Ordering::Relaxed), 100);
        assert!(!queue.push(0), "closed queue refuses work");
        assert_eq!(queue.pop(), None, "closed + drained pops None");
        assert!(queue.is_empty());
    }

    #[test]
    fn task_queue_pop_blocks_until_push() {
        let queue = std::sync::Arc::new(TaskQueue::new());
        let q2 = std::sync::Arc::clone(&queue);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        queue.push(42usize);
        assert_eq!(popper.join().unwrap(), Some(42));
    }

    #[test]
    fn slice_mut_hands_out_disjoint_csr_segments() {
        // CSR-style refresh: chunk i owns slab[starts[i]..starts[i+1]].
        let starts = [0usize, 3, 7, 8, 12];
        let mut slab = vec![0u32; 12];
        for threads in [1, 4] {
            slab.fill(0);
            {
                let view = UnsafeSlice::new(&mut slab);
                par_for(threads, starts.len() - 1, 1, |range| {
                    for i in range {
                        let lo = starts[i];
                        // SAFETY: CSR segments are disjoint by construction.
                        let seg = unsafe { view.slice_mut(lo, starts[i + 1] - lo) };
                        for v in seg {
                            *v += i as u32 + 1;
                        }
                    }
                });
            }
            assert_eq!(
                slab,
                [1, 1, 1, 2, 2, 2, 2, 3, 4, 4, 4, 4],
                "threads={threads}"
            );
        }
    }

    #[test]
    fn chunk_boundaries_depend_only_on_n() {
        assert_eq!(chunk_size(10, 4), 4);
        assert_eq!(chunk_size(100_000, 4), 3125);
        // min_chunk floors the size.
        assert_eq!(chunk_size(64, 128), 128);
    }
}

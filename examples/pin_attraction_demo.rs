//! Fig. 2 in miniature: a three-pin net where net weighting over-constrains
//! a non-critical sink while pin-to-pin attraction weights only the
//! critical pair — and path-sharing sums slacks instead of taking the min.
//!
//! ```text
//! cargo run --release --example pin_attraction_demo
//! ```

use netlist::PinId;
use tdp_core::PinPairSet;

fn main() {
    // The paper's example: driver A fans out to B (+20 ps slack path) and
    // C, where C lies on two violating paths (-400 and -500 ps).
    let a_to_b: (PinId, PinId) = (PinId::new(0), PinId::new(1));
    let a_to_c: (PinId, PinId) = (PinId::new(0), PinId::new(2));
    let wns = -500.0;
    let (w0, w1) = (10.0, 0.2);

    let mut pairs = PinPairSet::new();
    // Path PO1 through B has positive slack: ignored entirely.
    pairs.update_path(&[a_to_b], 20.0, wns, w0, w1);
    // Paths PO2 and PO3 both run through A->C: the pair is weighted twice.
    pairs.update_path(&[a_to_c], -400.0, wns, w0, w1);
    pairs.update_path(&[a_to_c], -500.0, wns, w0, w1);

    println!("pin-to-pin attraction on the 3-pin net of Fig. 2:");
    println!(
        "  A->B weight: {:?}   (positive-slack path: no attraction at all)",
        pairs.weight(a_to_b.0, a_to_b.1)
    );
    println!(
        "  A->C weight: {:?} (w0 then +w1*(-500/-500): path-sharing accumulates)",
        pairs.weight(a_to_c.0, a_to_c.1)
    );
    println!();
    println!("net weighting, by contrast, would assign one weight from");
    println!("min(-400, -500) = -500 ps to the whole net, pulling B along");
    println!("with C and wasting wirelength on a path with +20 ps slack.");
    println!();
    println!(
        "effective criticality seen by the pair update: sum-like ({} entries in P)",
        pairs.len()
    );
}

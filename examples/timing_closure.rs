//! Timing closure on a generated benchmark: compares the wirelength-driven
//! baseline against the Efficient-TDP flow on one suite case and shows how
//! much negative slack the pin-to-pin attraction recovers.
//!
//! ```text
//! cargo run --release --example timing_closure [case]
//! ```

use tdp_core::{run_method, FlowConfig, Method};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "sb16".to_string());
    let case = benchgen::suite()
        .into_iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("unknown case {name}; try sb1/sb3/sb4/sb5/sb7/sb10/sb16/sb18"));
    let (design, pads) = benchgen::generate(&case.params);
    let stats = design.stats();
    println!(
        "case {}: {} cells ({} movable, {} flip-flops), {} nets, clock {} ps",
        case.name,
        stats.num_cells,
        stats.num_movable,
        stats.num_sequential,
        stats.num_nets,
        case.params.clock_period
    );

    let mut cfg = FlowConfig::default();
    cfg.rc.res_per_unit = case.params.res_per_unit;
    cfg.rc.cap_per_unit = case.params.cap_per_unit;

    let baseline = run_method(&design, pads.clone(), Method::DreamPlace, &cfg);
    let ours = run_method(&design, pads, Method::EfficientTdp, &cfg);

    println!(
        "\n{:<24} {:>12} {:>10} {:>12} {:>8}",
        "method", "TNS (ps)", "WNS (ps)", "HPWL", "failing"
    );
    for out in [&baseline, &ours] {
        println!(
            "{:<24} {:>12.0} {:>10.0} {:>12.0} {:>5}/{}",
            out.method,
            out.metrics.tns,
            out.metrics.wns,
            out.metrics.hpwl,
            out.metrics.failing_endpoints,
            out.metrics.total_endpoints
        );
    }
    let tns_gain = 100.0 * (1.0 - ours.metrics.tns / baseline.metrics.tns.min(-1.0));
    let hpwl_delta = 100.0 * (ours.metrics.hpwl / baseline.metrics.hpwl - 1.0);
    println!(
        "\nTNS improved by {:.1}% at {:+.1}% HPWL.",
        tns_gain, hpwl_delta
    );
}

//! Timing closure on a generated benchmark: compares the wirelength-driven
//! baseline against the Efficient-TDP flow on one suite case and shows how
//! much negative slack the pin-to-pin attraction recovers.
//!
//! Both methods run through one [`Session`], so the timing graph and RC
//! data are built once and shared.
//!
//! ```text
//! cargo run --release --example timing_closure [case]
//! ```

use tdp_core::{FlowBuilder, ObjectiveSpec, Session};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "sb16".to_string());
    let case = benchgen::suite()
        .into_iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("unknown case {name}; try sb1/sb3/sb4/sb5/sb7/sb10/sb16/sb18"));
    let (design, pads) = benchgen::generate(&case.params);
    let stats = design.stats();
    println!(
        "case {}: {} cells ({} movable, {} flip-flops), {} nets, clock {} ps",
        case.name,
        stats.num_cells,
        stats.num_movable,
        stats.num_sequential,
        stats.num_nets,
        case.params.clock_period
    );

    let mut session = Session::builder(design, pads)
        .build()
        .expect("generated designs are acyclic");
    let spec_for = |objective: ObjectiveSpec| {
        let mut rc = tdp_core::FlowConfig::default().rc;
        rc.res_per_unit = case.params.res_per_unit;
        rc.cap_per_unit = case.params.cap_per_unit;
        FlowBuilder::new()
            .objective(objective)
            .rc(rc)
            .build()
            .expect("valid configuration")
    };

    let baseline = session
        .run(&spec_for(ObjectiveSpec::DreamPlace))
        .expect("flow runs");
    let ours = session
        .run(&spec_for(ObjectiveSpec::EfficientTdp))
        .expect("flow runs");

    println!(
        "\n{:<24} {:>12} {:>10} {:>12} {:>8}",
        "method", "TNS (ps)", "WNS (ps)", "HPWL", "failing"
    );
    for out in [&baseline, &ours] {
        println!(
            "{:<24} {:>12.0} {:>10.0} {:>12.0} {:>5}/{}",
            out.method,
            out.metrics.tns,
            out.metrics.wns,
            out.metrics.hpwl,
            out.metrics.failing_endpoints,
            out.metrics.total_endpoints
        );
    }
    let tns_gain = 100.0 * (1.0 - ours.metrics.tns / baseline.metrics.tns.min(-1.0));
    let hpwl_delta = 100.0 * (ours.metrics.hpwl / baseline.metrics.hpwl - 1.0);
    println!(
        "\nTNS improved by {:.1}% at {:+.1}% HPWL.",
        tns_gain, hpwl_delta
    );
}

//! Standalone STA usage: generate a design, scatter it, and print a
//! classic timing report — the worst paths with per-pin arrivals, plus the
//! endpoint-coverage difference between the two extraction commands.
//!
//! Also demonstrates the graph-sharing primitives the flow-level
//! `Session` is built on: `Sta::from_parts` makes a second analyzer
//! without rebuilding the timing graph, and `checkpoint`/`restore` roll
//! analysis state back between uses.
//!
//! ```text
//! cargo run --release --example sta_report
//! ```

use netlist::Placement;
use sta::{NetTopology, RcParams, Sta};

fn main() {
    let case = benchgen::suite()
        .into_iter()
        .find(|c| c.name == "sb18")
        .expect("suite has sb18");
    let (design, pads) = benchgen::generate(&case.params);

    // Deterministic scatter (no placer needed for a timing report demo).
    let mut placement: Placement = pads;
    let die = design.die();
    let mut s = 2024u64;
    for c in design.cell_ids() {
        if design.cell(c).fixed {
            continue;
        }
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let x = (s % 9973) as f64 / 9973.0 * (die.width() - 8.0);
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let y = (s % 9973) as f64 / 9973.0 * (die.height() - 10.0);
        placement.set(c, x, y);
    }

    let rc = RcParams {
        res_per_unit: case.params.res_per_unit,
        cap_per_unit: case.params.cap_per_unit,
        topology: NetTopology::SteinerMst,
    };
    let mut sta = Sta::new(&design, rc).expect("generated designs are acyclic");
    sta.analyze(&design, &placement);

    let summary = sta.summary();
    println!(
        "design {}: WNS {:.1} ps, TNS {:.1} ps, {}/{} endpoints failing (clock {} ps)",
        design.name(),
        summary.wns,
        summary.tns,
        summary.failing_endpoints,
        summary.total_endpoints,
        design.sdc().clock_period
    );

    println!("\n== two worst paths (report_timing(2)) ==");
    for path in sta.report_timing(&design, 2) {
        print!("{}", path.display(&design));
    }

    let n = summary.failing_endpoints;
    let global = sta.report_timing(&design, n);
    let per_ep = sta.report_timing_endpoint(&design, n, 1);
    let unique = |paths: &[sta::TimingPath]| {
        paths
            .iter()
            .map(|p| p.endpoint())
            .collect::<std::collections::HashSet<_>>()
            .len()
    };
    println!(
        "== endpoint coverage with a budget of {n} paths ==\n  report_timing(n):            {} unique endpoints\n  report_timing_endpoint(n,1): {} unique endpoints",
        unique(&global),
        unique(&per_ep)
    );

    // Graph sharing, as the flow Session does it: a second analyzer from
    // the same graph + RC skeleton (no reconstruction), checkpointed
    // pristine, analyzed, and rolled back.
    let mut shared = sta::Sta::from_parts(sta.graph_handle(), sta.skeleton_handle(), &design, rc);
    let pristine = shared.checkpoint();
    shared.analyze(&design, &placement);
    assert_eq!(shared.summary(), summary);
    shared.restore(&pristine);
    println!(
        "\n== shared-graph analyzer ==\n  re-analysis matches: yes; rolled back to pristine: analyzed = {}",
        shared.is_analyzed()
    );
}

//! Standalone STA usage: generate a design, scatter it, and print a
//! classic timing report — the worst paths with per-pin arrivals, plus the
//! endpoint-coverage difference between the two extraction commands.
//!
//! ```text
//! cargo run --release --example sta_report
//! ```

use netlist::Placement;
use sta::{NetTopology, RcParams, Sta};

fn main() {
    let case = benchgen::suite()
        .into_iter()
        .find(|c| c.name == "sb18")
        .expect("suite has sb18");
    let (design, pads) = benchgen::generate(&case.params);

    // Deterministic scatter (no placer needed for a timing report demo).
    let mut placement: Placement = pads;
    let die = design.die();
    let mut s = 2024u64;
    for c in design.cell_ids() {
        if design.cell(c).fixed {
            continue;
        }
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let x = (s % 9973) as f64 / 9973.0 * (die.width() - 8.0);
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let y = (s % 9973) as f64 / 9973.0 * (die.height() - 10.0);
        placement.set(c, x, y);
    }

    let rc = RcParams {
        res_per_unit: case.params.res_per_unit,
        cap_per_unit: case.params.cap_per_unit,
        topology: NetTopology::SteinerMst,
    };
    let mut sta = Sta::new(&design, rc).expect("generated designs are acyclic");
    sta.analyze(&design, &placement);

    let summary = sta.summary();
    println!(
        "design {}: WNS {:.1} ps, TNS {:.1} ps, {}/{} endpoints failing (clock {} ps)",
        design.name(),
        summary.wns,
        summary.tns,
        summary.failing_endpoints,
        summary.total_endpoints,
        design.sdc().clock_period
    );

    println!("\n== two worst paths (report_timing(2)) ==");
    for path in sta.report_timing(&design, 2) {
        print!("{}", path.display(&design));
    }

    let n = summary.failing_endpoints;
    let global = sta.report_timing(&design, n);
    let per_ep = sta.report_timing_endpoint(&design, n, 1);
    let unique = |paths: &[sta::TimingPath]| {
        paths
            .iter()
            .map(|p| p.endpoint())
            .collect::<std::collections::HashSet<_>>()
            .len()
    };
    println!(
        "== endpoint coverage with a budget of {n} paths ==\n  report_timing(n):            {} unique endpoints\n  report_timing_endpoint(n,1): {} unique endpoints",
        unique(&global),
        unique(&per_ep)
    );
}

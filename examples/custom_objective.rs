//! Extending the flow with a custom timing objective through the session
//! front door: implements `SessionObjective` + `ObjectiveFactory` to pull
//! all flip-flops toward their fan-in logic — a simple
//! register-retiming-flavoured heuristic — and compares it against the
//! plain wirelength flow.
//!
//! The custom objective registers via `ObjectiveSpec::custom` and runs
//! through exactly the same `session.run` path as the paper's
//! `EfficientTdp` method: same engine, same legalization, same evaluation
//! kit, same observers.
//!
//! ```text
//! cargo run --release --example custom_objective
//! ```

use netlist::{Design, MoveTracker, PinId, Placement};
use placer::TimingObjective;
use tdp_core::{
    FlowBuilder, FlowError, ObjectiveContext, ObjectiveFactory, ObjectiveSpec, Session,
    SessionObjective,
};

/// Pulls every flip-flop D pin toward its driver with a fixed quadratic
/// attraction (no STA at all — deliberately simple).
struct RegisterPull {
    strength: f64,
    pairs: Vec<(PinId, PinId)>,
}

impl RegisterPull {
    fn new(design: &Design, strength: f64) -> Self {
        let mut pairs = Vec::new();
        for cell in design.cell_ids() {
            let ty = design.cell_type(cell);
            if !ty.is_sequential {
                continue;
            }
            let Some(d_idx) = ty.data_pin() else { continue };
            let d_pin = design.cell(cell).pins[d_idx];
            if let Some(net) = design.pin(d_pin).net {
                pairs.push((design.net(net).driver(), d_pin));
            }
        }
        Self { strength, pairs }
    }
}

impl TimingObjective for RegisterPull {
    fn begin_iteration(
        &mut self,
        _iter: usize,
        _design: &Design,
        _placement: &Placement,
        _moves: &mut MoveTracker,
    ) {
    }

    fn net_weights(&mut self, _design: &Design) -> Option<&[f64]> {
        None
    }

    fn accumulate_gradient(
        &mut self,
        design: &Design,
        placement: &Placement,
        grad_x: &mut [f64],
        grad_y: &mut [f64],
    ) -> f64 {
        let mut total = 0.0;
        for &(drv, d) in &self.pairs {
            let (xa, ya) = placement.pin_position(design, drv);
            let (xb, yb) = placement.pin_position(design, d);
            let (dx, dy) = (xa - xb, ya - yb);
            total += self.strength * (dx * dx + dy * dy);
            let ca = design.pin(drv).cell.index();
            let cb = design.pin(d).cell.index();
            grad_x[ca] += self.strength * 2.0 * dx;
            grad_y[ca] += self.strength * 2.0 * dy;
            grad_x[cb] -= self.strength * 2.0 * dx;
            grad_y[cb] -= self.strength * 2.0 * dy;
        }
        total
    }
}

// No timing trace, no STA runtimes: the defaults are exactly right.
impl SessionObjective for RegisterPull {}

/// A pure-wirelength baseline that honors the configured schedule
/// (unlike `ObjectiveSpec::DreamPlace`, which stops at density
/// convergence by design), so the comparison below is engine-for-engine.
struct WirelengthOnlyFactory;

impl ObjectiveFactory for WirelengthOnlyFactory {
    fn label(&self) -> String {
        "Wirelength only".to_string()
    }

    fn build(&self, _ctx: &ObjectiveContext<'_>) -> Result<Box<dyn SessionObjective>, FlowError> {
        Ok(Box::new(placer::NoTimingObjective))
    }

    fn is_timing_driven(&self) -> bool {
        false
    }
}

/// Builds a fresh `RegisterPull` for every run of the spec.
struct RegisterPullFactory {
    strength: f64,
}

impl ObjectiveFactory for RegisterPullFactory {
    fn label(&self) -> String {
        "Register pull (custom)".to_string()
    }

    fn build(&self, ctx: &ObjectiveContext<'_>) -> Result<Box<dyn SessionObjective>, FlowError> {
        Ok(Box::new(RegisterPull::new(ctx.design(), self.strength)))
    }

    // The pull never consults the timing schedule, so the run may stop at
    // density convergence like the wirelength baseline.
    fn is_timing_driven(&self) -> bool {
        false
    }
}

fn main() -> Result<(), FlowError> {
    let case = benchgen::suite()
        .into_iter()
        .find(|c| c.name == "sb18")
        .expect("suite has sb18");
    let (design, pads) = benchgen::generate(&case.params);

    // One session serves both the baseline and the custom objective.
    let mut session = Session::builder(design, pads).build()?;

    // Both flows get the same fixed schedule so the comparison is
    // engine-for-engine; both objectives are custom non-timing factories,
    // which honor the configured iteration bounds as-is.
    let baseline_spec = FlowBuilder::new()
        .objective(ObjectiveSpec::custom(WirelengthOnlyFactory))
        .iterations(400, 700)
        .build()?;
    let custom_spec = FlowBuilder::new()
        .objective(ObjectiveSpec::custom(RegisterPullFactory {
            strength: 5e-4,
        }))
        .iterations(400, 700)
        .build()?;

    let baseline = session.run(&baseline_spec)?;
    let pulled = session.run(&custom_spec)?;

    println!(
        "{:<22}: TNS {:>10.0} ps  WNS {:>8.0} ps  HPWL {:>10.0}",
        baseline.method, baseline.metrics.tns, baseline.metrics.wns, baseline.metrics.hpwl
    );
    println!(
        "{:<22}: TNS {:>10.0} ps  WNS {:>8.0} ps  HPWL {:>10.0}",
        pulled.method, pulled.metrics.tns, pulled.metrics.wns, pulled.metrics.hpwl
    );
    println!("\n(a crude static pull already shifts timing; the Efficient-TDP");
    println!("objective replaces it with extracted critical paths and Eq. 9 weights —");
    println!("both enter through the same ObjectiveSpec front door)");
    Ok(())
}

//! Extending the placer with a custom timing objective: implements the
//! `TimingObjective` trait to pull all flip-flops toward their fan-in
//! logic — a simple register-retiming-flavoured heuristic — and compares
//! it against the plain wirelength flow.
//!
//! This demonstrates the extension point the Efficient-TDP flow itself
//! uses; downstream users can prototype their own timing models the same
//! way.
//!
//! ```text
//! cargo run --release --example custom_objective
//! ```

use netlist::{Design, MoveTracker, PinId, Placement};
use placer::{GlobalPlacer, TimingObjective};
use tdp_core::{evaluate, FlowConfig};

/// Pulls every flip-flop D pin toward its driver with a fixed quadratic
/// attraction (no STA at all — deliberately simple).
struct RegisterPull {
    strength: f64,
    pairs: Vec<(PinId, PinId)>,
}

impl RegisterPull {
    fn new(design: &Design, strength: f64) -> Self {
        let mut pairs = Vec::new();
        for cell in design.cell_ids() {
            let ty = design.cell_type(cell);
            if !ty.is_sequential {
                continue;
            }
            let Some(d_idx) = ty.data_pin() else { continue };
            let d_pin = design.cell(cell).pins[d_idx];
            if let Some(net) = design.pin(d_pin).net {
                pairs.push((design.net(net).driver(), d_pin));
            }
        }
        Self { strength, pairs }
    }
}

impl TimingObjective for RegisterPull {
    fn begin_iteration(
        &mut self,
        _iter: usize,
        _design: &Design,
        _placement: &Placement,
        _moves: &mut MoveTracker,
    ) {
    }

    fn net_weights(&mut self, _design: &Design) -> Option<&[f64]> {
        None
    }

    fn accumulate_gradient(
        &mut self,
        design: &Design,
        placement: &Placement,
        grad_x: &mut [f64],
        grad_y: &mut [f64],
    ) -> f64 {
        let mut total = 0.0;
        for &(drv, d) in &self.pairs {
            let (xa, ya) = placement.pin_position(design, drv);
            let (xb, yb) = placement.pin_position(design, d);
            let (dx, dy) = (xa - xb, ya - yb);
            total += self.strength * (dx * dx + dy * dy);
            let ca = design.pin(drv).cell.index();
            let cb = design.pin(d).cell.index();
            grad_x[ca] += self.strength * 2.0 * dx;
            grad_y[ca] += self.strength * 2.0 * dy;
            grad_x[cb] -= self.strength * 2.0 * dx;
            grad_y[cb] -= self.strength * 2.0 * dy;
        }
        total
    }
}

fn main() {
    let case = benchgen::suite()
        .into_iter()
        .find(|c| c.name == "sb18")
        .expect("suite has sb18");
    let (design, pads) = benchgen::generate(&case.params);
    let cfg = FlowConfig::default();

    let mut baseline_engine = GlobalPlacer::new(&design, pads.clone(), cfg.placer);
    let baseline = baseline_engine.run(&design);

    let mut engine = GlobalPlacer::new(&design, pads, cfg.placer);
    let mut objective = RegisterPull::new(&design, 5e-4);
    let pulled = engine.run_with(&design, &mut objective);

    let mb = evaluate(&design, &baseline.placement, cfg.rc);
    let mp = evaluate(&design, &pulled.placement, cfg.rc);
    println!("{} register->driver pairs pulled", objective.pairs.len());
    println!(
        "baseline      : TNS {:>10.0} ps  WNS {:>8.0} ps  HPWL {:>10.0}",
        mb.tns, mb.wns, mb.hpwl
    );
    println!(
        "register pull : TNS {:>10.0} ps  WNS {:>8.0} ps  HPWL {:>10.0}",
        mp.tns, mp.wns, mp.hpwl
    );
    println!("\n(a crude static pull already shifts timing; the Efficient-TDP");
    println!("objective replaces it with extracted critical paths and Eq. 9 weights)");
}

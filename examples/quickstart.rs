//! Quickstart: build a tiny design by hand, open a [`Session`] on it, run
//! the timing-driven flow through a validated [`FlowBuilder`] spec and
//! print the evaluation metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use netlist::{CellLibrary, DesignBuilder, Placement, Rect, Sdc};
use tdp_core::{FlowBuilder, ObjectiveSpec, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-stage pipeline: pi -> nand -> inv -> DFF -> buf -> po, with a
    // side input. Real users would parse a netlist; the builder API is the
    // programmatic equivalent.
    let lib = CellLibrary::standard();
    let die = Rect::new(0.0, 0.0, 200.0, 200.0);
    let mut b = DesignBuilder::new("quickstart", lib, die, 10.0);
    b.set_sdc(Sdc::new(400.0));

    let pi_a = b.add_fixed_cell("pi_a", "IOPAD_IN", 0.0, 80.0)?;
    let pi_b = b.add_fixed_cell("pi_b", "IOPAD_IN", 0.0, 120.0)?;
    let nand = b.add_cell("u_nand", "NAND2_X1")?;
    let inv = b.add_cell("u_inv", "INV_X1")?;
    let dff = b.add_cell("u_dff", "DFF_X1")?;
    let buf = b.add_cell("u_buf", "BUF_X1")?;
    let po = b.add_fixed_cell("po", "IOPAD_OUT", 196.0, 100.0)?;

    b.add_net("n_a", &[(pi_a, "PAD"), (nand, "A")])?;
    b.add_net("n_b", &[(pi_b, "PAD"), (nand, "B")])?;
    b.add_net("n_1", &[(nand, "Y"), (inv, "A")])?;
    b.add_net("n_2", &[(inv, "Y"), (dff, "D")])?;
    b.add_net("n_q", &[(dff, "Q"), (buf, "A")])?;
    b.add_net("n_o", &[(buf, "Y"), (po, "PAD")])?;

    let (design, fixed) = b.finish_with_positions()?;
    let mut pads = Placement::new(&design);
    for (cell, x, y) in fixed {
        pads.set(cell, x, y);
    }

    // A session validates the design once (graph construction, RC data)
    // and can then run any number of flow specs against it.
    let mut session = Session::builder(design, pads).build()?;

    // Small design: shrink the schedule accordingly. The builder
    // validates the combination and rejects bad ones with a FlowError
    // instead of panicking mid-run.
    let spec = FlowBuilder::new()
        .objective(ObjectiveSpec::EfficientTdp)
        .iterations(150, 200)
        .timing_start(60)
        .timing_interval(10)
        .build()?;

    let outcome = session.run(&spec)?;
    println!("method     : {}", outcome.method);
    println!("iterations : {}", outcome.iterations);
    println!("HPWL       : {:.1}", outcome.metrics.hpwl);
    println!(
        "TNS / WNS  : {:.1} / {:.1} ps ({} of {} endpoints failing)",
        outcome.metrics.tns,
        outcome.metrics.wns,
        outcome.metrics.failing_endpoints,
        outcome.metrics.total_endpoints
    );
    for cell in session.design().cell_ids() {
        let (x, y) = outcome.placement.get(cell);
        println!(
            "  {:8} at ({x:7.2}, {y:7.2})",
            session.design().cell(cell).name
        );
    }
    Ok(())
}

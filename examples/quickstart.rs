//! Quickstart: build a tiny design by hand, run the timing-driven flow and
//! print the evaluation metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use netlist::{CellLibrary, DesignBuilder, Placement, Rect, Sdc};
use tdp_core::{run_method, FlowConfig, Method};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-stage pipeline: pi -> nand -> inv -> DFF -> buf -> po, with a
    // side input. Real users would parse a netlist; the builder API is the
    // programmatic equivalent.
    let lib = CellLibrary::standard();
    let die = Rect::new(0.0, 0.0, 200.0, 200.0);
    let mut b = DesignBuilder::new("quickstart", lib, die, 10.0);
    b.set_sdc(Sdc::new(400.0));

    let pi_a = b.add_fixed_cell("pi_a", "IOPAD_IN", 0.0, 80.0)?;
    let pi_b = b.add_fixed_cell("pi_b", "IOPAD_IN", 0.0, 120.0)?;
    let nand = b.add_cell("u_nand", "NAND2_X1")?;
    let inv = b.add_cell("u_inv", "INV_X1")?;
    let dff = b.add_cell("u_dff", "DFF_X1")?;
    let buf = b.add_cell("u_buf", "BUF_X1")?;
    let po = b.add_fixed_cell("po", "IOPAD_OUT", 196.0, 100.0)?;

    b.add_net("n_a", &[(pi_a, "PAD"), (nand, "A")])?;
    b.add_net("n_b", &[(pi_b, "PAD"), (nand, "B")])?;
    b.add_net("n_1", &[(nand, "Y"), (inv, "A")])?;
    b.add_net("n_2", &[(inv, "Y"), (dff, "D")])?;
    b.add_net("n_q", &[(dff, "Q"), (buf, "A")])?;
    b.add_net("n_o", &[(buf, "Y"), (po, "PAD")])?;

    let (design, fixed) = b.finish_with_positions()?;
    let mut pads = Placement::new(&design);
    for (cell, x, y) in fixed {
        pads.set(cell, x, y);
    }

    // Small design: shrink the schedule accordingly.
    let mut cfg = FlowConfig::default();
    cfg.placer.min_iterations = 150;
    cfg.placer.max_iterations = 200;
    cfg.timing_start = 60;
    cfg.timing_interval = 10;

    let outcome = run_method(&design, pads, Method::EfficientTdp, &cfg);
    println!("method     : {}", outcome.method);
    println!("iterations : {}", outcome.iterations);
    println!("HPWL       : {:.1}", outcome.metrics.hpwl);
    println!(
        "TNS / WNS  : {:.1} / {:.1} ps ({} of {} endpoints failing)",
        outcome.metrics.tns,
        outcome.metrics.wns,
        outcome.metrics.failing_endpoints,
        outcome.metrics.total_endpoints
    );
    for cell in design.cell_ids() {
        let (x, y) = outcome.placement.get(cell);
        println!("  {:8} at ({x:7.2}, {y:7.2})", design.cell(cell).name);
    }
    Ok(())
}
